"""And-Inverter Graph (AIG) used as the bit-level logic representation.

The RTL synthesizer (:mod:`repro.rtl.synth`) lowers word-level designs into
this structure; the model-checking algorithms unroll it into CNF.

Representation
--------------
A *node* is an AND gate or an input, identified by an even integer.  A
*literal* is a node id optionally OR'ed with 1 to denote negation — the
standard AIGER convention:

* ``FALSE = 0``, ``TRUE = 1``
* node ``n``: positive literal ``n``, negated literal ``n ^ 1``

Structural hashing makes the graph canonical enough that repeated subterms
(ubiquitous in unrolled transition relations) are shared, and the constant
folding rules keep trivial gates out of the CNF.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["AIG", "TRUE", "FALSE"]

FALSE = 0
TRUE = 1


class AIG:
    """A mutable and-inverter graph with structural hashing.

    >>> g = AIG()
    >>> a = g.new_input("a")
    >>> b = g.new_input("b")
    >>> g.AND(a, b) == g.AND(b, a)   # hash-consed, commutative
    True
    >>> g.AND(a, FALSE)
    0
    """

    def __init__(self) -> None:
        # _gates[i] = (lhs_lit, rhs_lit) for node id 2*(i+1) ... but we keep a
        # flat dict keyed by node id for clarity; node ids grow by 2.
        self._next_node = 2
        self._and_of: Dict[int, Tuple[int, int]] = {}
        self._strash: Dict[Tuple[int, int], int] = {}
        self._inputs: List[int] = []
        self._input_set: set = set()
        self._input_names: Dict[int, str] = {}

    # -- construction --------------------------------------------------
    def new_input(self, name: str = "") -> int:
        node = self._next_node
        self._next_node += 2
        self._inputs.append(node)
        self._input_set.add(node)
        if name:
            self._input_names[node] = name
        return node

    def AND(self, a: int, b: int) -> int:
        """AND of two literals with constant folding and hash-consing."""
        if a > b:
            a, b = b, a
        if a == FALSE or b == FALSE:
            return FALSE
        if a == TRUE:
            return b
        if b == TRUE:
            return a
        if a == b:
            return a
        if a == (b ^ 1):
            return FALSE
        key = (a, b)
        node = self._strash.get(key)
        if node is None:
            node = self._next_node
            self._next_node += 2
            self._and_of[node] = key
            self._strash[key] = node
        return node

    @staticmethod
    def NOT(a: int) -> int:
        return a ^ 1

    def OR(self, a: int, b: int) -> int:
        return self.AND(a ^ 1, b ^ 1) ^ 1

    def XOR(self, a: int, b: int) -> int:
        return self.OR(self.AND(a, b ^ 1), self.AND(a ^ 1, b))

    def XNOR(self, a: int, b: int) -> int:
        return self.XOR(a, b) ^ 1

    def MUX(self, sel: int, then_lit: int, else_lit: int) -> int:
        """``sel ? then_lit : else_lit``."""
        if sel == TRUE:
            return then_lit
        if sel == FALSE:
            return else_lit
        if then_lit == else_lit:
            return then_lit
        return self.OR(self.AND(sel, then_lit), self.AND(sel ^ 1, else_lit))

    def IMPLIES(self, a: int, b: int) -> int:
        return self.OR(a ^ 1, b)

    def and_many(self, lits: Sequence[int]) -> int:
        out = TRUE
        for lit in lits:
            out = self.AND(out, lit)
        return out

    def or_many(self, lits: Sequence[int]) -> int:
        out = FALSE
        for lit in lits:
            out = self.OR(out, lit)
        return out

    # -- word-level helpers (little-endian bit vectors) ------------------
    def eq_vec(self, xs: Sequence[int], ys: Sequence[int]) -> int:
        """Equality of two equal-width bit vectors as a single literal."""
        if len(xs) != len(ys):
            raise ValueError("eq_vec width mismatch")
        return self.and_many([self.XNOR(x, y) for x, y in zip(xs, ys)])

    def const_vec(self, value: int, width: int) -> List[int]:
        return [TRUE if (value >> i) & 1 else FALSE for i in range(width)]

    def add_vec(self, xs: Sequence[int], ys: Sequence[int],
                carry_in: int = FALSE) -> List[int]:
        """Ripple-carry addition, result truncated to the operand width."""
        if len(xs) != len(ys):
            raise ValueError("add_vec width mismatch")
        out: List[int] = []
        carry = carry_in
        for x, y in zip(xs, ys):
            out.append(self.XOR(self.XOR(x, y), carry))
            carry = self.OR(self.AND(x, y), self.AND(carry, self.XOR(x, y)))
        return out

    def sub_vec(self, xs: Sequence[int], ys: Sequence[int]) -> List[int]:
        return self.add_vec(xs, [y ^ 1 for y in ys], carry_in=TRUE)

    def ult_vec(self, xs: Sequence[int], ys: Sequence[int]) -> int:
        """Unsigned less-than: borrow out of xs - ys."""
        if len(xs) != len(ys):
            raise ValueError("ult_vec width mismatch")
        carry = TRUE
        for x, y in zip(xs, ys):
            ny = y ^ 1
            carry = self.OR(self.AND(x, ny), self.AND(carry, self.XOR(x, ny)))
        return carry ^ 1

    def mux_vec(self, sel: int, thens: Sequence[int],
                elses: Sequence[int]) -> List[int]:
        if len(thens) != len(elses):
            raise ValueError("mux_vec width mismatch")
        return [self.MUX(sel, t, e) for t, e in zip(thens, elses)]

    def clone(self) -> "AIG":
        """An independent copy sharing no mutable state with the original.

        Node ids are preserved, so literals referring into the original are
        valid in the clone.  All payloads are immutable (ints, tuples,
        strings), which makes shallow container copies sufficient — cloning
        is O(gates) dict copies, orders of magnitude cheaper than re-running
        the RTL synthesizer that built the graph.
        """
        other = AIG.__new__(AIG)
        other._next_node = self._next_node
        other._and_of = dict(self._and_of)
        other._strash = dict(self._strash)
        other._inputs = list(self._inputs)
        other._input_set = set(self._input_set)
        other._input_names = dict(self._input_names)
        return other

    # -- introspection ---------------------------------------------------
    @property
    def inputs(self) -> List[int]:
        return list(self._inputs)

    def input_name(self, node: int) -> str:
        return self._input_names.get(node, f"i{node}")

    @property
    def num_ands(self) -> int:
        return len(self._and_of)

    def is_input(self, node: int) -> bool:
        return node in self._input_set

    def fanins(self, node: int) -> Tuple[int, int]:
        """The two fanin literals of an AND node."""
        return self._and_of[node]

    def is_and(self, node: int) -> bool:
        return node in self._and_of

    def eval_literal(self, lit: int, input_values: Dict[int, bool]) -> bool:
        """Concretely evaluate a literal given input-node truth values.

        Used by the trace extractor to fill in combinational values and by
        tests as a reference semantics for the gate constructors.  Iterative
        (explicit stack) so unrolled graphs cannot overflow Python's stack.
        """
        cache: Dict[int, bool] = {FALSE: False}
        stack = [lit & ~1]
        while stack:
            node = stack[-1]
            if node in cache:
                stack.pop()
                continue
            pair = self._and_of.get(node)
            if pair is None:
                cache[node] = input_values.get(node, False)
                stack.pop()
                continue
            lhs_node, rhs_node = pair[0] & ~1, pair[1] & ~1
            pending = [n for n in (lhs_node, rhs_node) if n not in cache]
            if pending:
                stack.extend(pending)
                continue
            lhs_val = cache[pair[0] & ~1] ^ bool(pair[0] & 1)
            rhs_val = cache[pair[1] & ~1] ^ bool(pair[1] & 1)
            cache[node] = lhs_val and rhs_val
            stack.pop()
        value = cache[lit & ~1]
        return (not value) if lit & 1 else value
