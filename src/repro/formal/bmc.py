"""Bounded model checking (BMC) of safety properties and cover reachability.

BMC unrolls the transition relation ``k`` cycles from the reset state and asks
the SAT solver for a path violating an assertion (or reaching a cover target)
at cycle ``k``.  It is the bug-finding half of the engine; proofs are the job
of :mod:`repro.formal.kinduction` / :mod:`repro.formal.pdr`.

Two entry-point shapes:

* :func:`bmc_safety` / :func:`bmc_cover` — one property, walking depths
  ``start_depth..max_depth``.  ``start_depth`` lets a caller resume past an
  already-cleared bound instead of re-hunting from zero (the proof engines
  report a counterexample *depth* beyond the hunt bound; regenerating its
  trace only needs the not-yet-cleared depths).
* :func:`bmc_sweep` — the batched form: one walk over the depths deciding a
  whole property *set* on one shared :class:`~repro.formal.cnf.Unroller`.
  At each depth every still-undecided target is queried under its own
  assumption literal, so frame encodings and learned clauses amortize
  across the set.  This mirrors how the paper's flow proves a property set
  per module, not one property at a time, and it is verdict/depth/trace
  equivalent to running the per-property functions (each BMC query is an
  independent exact decision — batching changes solver state, never
  answers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..obs import METRICS
from .cnf import Unroller
from .sat import Solver
from .trace import Trace, extract_trace
from .transition import TransitionSystem

__all__ = ["BmcResult", "SweepTarget", "bmc_safety", "bmc_cover",
           "bmc_sweep"]


@dataclass
class BmcResult:
    """Outcome of a bounded check.

    ``failed`` — a violating/reaching path exists; ``depth`` is its length
    (cycles from reset); ``trace`` the extracted waveform.  When ``failed``
    is False the property held up to ``depth`` cycles (no conclusion beyond).
    """

    failed: bool
    depth: int
    trace: Optional[Trace] = None
    solver_stats: Optional[dict] = None


@dataclass(frozen=True)
class SweepTarget:
    """One property in a batched sweep.

    ``kind`` decides the query polarity at each depth: ``"assert"`` asks
    for a state where ``lit`` is *false* (a violation); ``"cover"`` (also
    used for liveness lasso hunts) asks for a state where ``lit`` is *true*
    (a witness).
    """

    name: str
    lit: int
    kind: str = "assert"  # "assert" | "cover"


def bmc_safety(system: TransitionSystem, assert_lit: int, max_depth: int,
               property_name: str = "assertion",
               unroller: Optional[Unroller] = None,
               start_depth: int = 0) -> BmcResult:
    """Search for a violation of ``assert_lit`` within ``max_depth`` cycles.

    The unroller may be shared across properties of the same system so that
    learned clauses and frame encodings are reused (this mirrors how a formal
    tool proves a property *set*, not one property at a time).
    ``start_depth`` skips depths a previous hunt already cleared.
    """
    results = bmc_sweep(system,
                        [SweepTarget(property_name, assert_lit, "assert")],
                        max_depth, unroller=unroller,
                        start_depth=start_depth)
    return results[(property_name, "assert")]


def bmc_cover(system: TransitionSystem, cover_lit: int, max_depth: int,
              property_name: str = "cover",
              unroller: Optional[Unroller] = None,
              start_depth: int = 0) -> BmcResult:
    """Search for a path reaching ``cover_lit`` within ``max_depth`` cycles."""
    results = bmc_sweep(system,
                        [SweepTarget(property_name, cover_lit, "cover")],
                        max_depth, unroller=unroller,
                        start_depth=start_depth)
    return results[(property_name, "cover")]


def bmc_sweep(system: TransitionSystem, targets: Sequence[SweepTarget],
              max_depth: int,
              unroller: Optional[Unroller] = None,
              start_depth: int = 0) -> "Dict[Tuple[str, str], BmcResult]":
    """Decide every target with one walk over depths ``start_depth..max_depth``.

    At each depth every still-undecided target is solved under its own
    assumption literal on the shared unroller; a SAT answer decides that
    target (``failed=True`` at that depth, trace extracted from the model)
    and removes it from the sweep.  Targets surviving all depths come back
    ``failed=False`` at ``max_depth``.

    Results are keyed by ``(name, kind)`` — names must be unique within a
    kind, mirroring the namespace rule of the property inventory.
    Verdicts and depths are identical to running
    :func:`bmc_safety` / :func:`bmc_cover` per target, because each
    (target, depth) SAT query is decided by the formula, not by solver
    state; traces are witnesses at the same (minimal) depth, extracted
    from whatever model the shared solver produced.

    Query batching: at each depth the sweep first asks one *disjunction*
    query — "does any still-undecided target fire at this depth?" — under
    a single guard assumption.  UNSAT (the overwhelmingly common answer on
    proving designs) clears every target at that depth for the price of
    one query instead of P.  A SAT answer decides, from its model, every
    target it witnesses, and the disjunction over the remainder is
    re-asked until it comes back UNSAT — so each extra query decides at
    least one more target.  Per-target assumption queries and verdicts are
    exactly those of the unbatched loop; only the number of solver calls
    changes.
    """
    keys = [(t.name, t.kind) for t in targets]
    if len(set(keys)) != len(keys):
        raise ValueError(f"duplicate (name, kind) targets in sweep: {keys}")
    unroller = unroller or Unroller(system)
    solver = unroller.solver
    results: Dict[Tuple[str, str], BmcResult] = {}
    pending = list(targets)
    for k in range(start_depth, max_depth + 1):
        if not pending:
            break
        METRICS.counter("bmc.depth_extended").inc()
        queries = {
            (target.name, target.kind):
                (unroller.sat_literal(target.lit, k) if
                 target.kind == "cover"
                 else -unroller.sat_literal(target.lit, k))
            for target in pending}
        while pending:
            if len(pending) == 1:
                # One target left: its own assumption literal is the query.
                target = pending[0]
                if solver.solve(
                        assumptions=[queries[(target.name, target.kind)]]):
                    results[(target.name, target.kind)] = BmcResult(
                        failed=True, depth=k,
                        trace=extract_trace(target.name, system, unroller,
                                            depth=k),
                        solver_stats=solver.stats.as_dict())
                    pending = []
                break
            # Disjunction pre-filter under one guard assumption.
            guard = solver.new_var()
            solver.add_clause([-guard] + [queries[(t.name, t.kind)]
                                          for t in pending])
            sat = solver.solve(assumptions=[guard])
            if not sat:
                solver.add_clause([-guard])  # retire the guard
                break  # every pending target survives depth k
            # The model witnesses at least one target; decide all it hits.
            still = []
            for target in pending:
                if solver.value(queries[(target.name, target.kind)]):
                    results[(target.name, target.kind)] = BmcResult(
                        failed=True, depth=k,
                        trace=extract_trace(target.name, system, unroller,
                                            depth=k),
                        solver_stats=solver.stats.as_dict())
                else:
                    still.append(target)
            solver.add_clause([-guard])  # retire the guard
            pending = still
    for target in pending:
        results[(target.name, target.kind)] = BmcResult(
            failed=False, depth=max_depth,
            solver_stats=solver.stats.as_dict())
    return results
