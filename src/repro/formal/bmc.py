"""Bounded model checking (BMC) of safety properties and cover reachability.

BMC unrolls the transition relation ``k`` cycles from the reset state and asks
the SAT solver for a path violating an assertion (or reaching a cover target)
at cycle ``k``.  It is the bug-finding half of the engine; proofs are the job
of :mod:`repro.formal.kinduction`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .cnf import Unroller
from .sat import Solver
from .trace import Trace, extract_trace
from .transition import TransitionSystem

__all__ = ["BmcResult", "bmc_safety", "bmc_cover"]


@dataclass
class BmcResult:
    """Outcome of a bounded check.

    ``failed`` — a violating/reaching path exists; ``depth`` is its length
    (cycles from reset); ``trace`` the extracted waveform.  When ``failed``
    is False the property held up to ``depth`` cycles (no conclusion beyond).
    """

    failed: bool
    depth: int
    trace: Optional[Trace] = None
    solver_stats: Optional[dict] = None


def bmc_safety(system: TransitionSystem, assert_lit: int, max_depth: int,
               property_name: str = "assertion",
               unroller: Optional[Unroller] = None) -> BmcResult:
    """Search for a violation of ``assert_lit`` within ``max_depth`` cycles.

    The unroller may be shared across properties of the same system so that
    learned clauses and frame encodings are reused (this mirrors how a formal
    tool proves a property *set*, not one property at a time).
    """
    unroller = unroller or Unroller(system)
    solver = unroller.solver
    for k in range(max_depth + 1):
        bad = -unroller.sat_literal(assert_lit, k)
        if solver.solve(assumptions=[bad]):
            trace = extract_trace(property_name, system, unroller, depth=k)
            return BmcResult(failed=True, depth=k, trace=trace,
                             solver_stats=solver.stats.as_dict())
    return BmcResult(failed=False, depth=max_depth,
                     solver_stats=solver.stats.as_dict())


def bmc_cover(system: TransitionSystem, cover_lit: int, max_depth: int,
              property_name: str = "cover",
              unroller: Optional[Unroller] = None) -> BmcResult:
    """Search for a path reaching ``cover_lit`` within ``max_depth`` cycles."""
    unroller = unroller or Unroller(system)
    solver = unroller.solver
    for k in range(max_depth + 1):
        target = unroller.sat_literal(cover_lit, k)
        if solver.solve(assumptions=[target]):
            trace = extract_trace(property_name, system, unroller, depth=k)
            return BmcResult(failed=True, depth=k, trace=trace,
                             solver_stats=solver.stats.as_dict())
    return BmcResult(failed=False, depth=max_depth,
                     solver_stats=solver.stats.as_dict())
