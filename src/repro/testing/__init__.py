"""Test-support substrate shipped with the package.

Lives under ``repro.testing`` (not ``tests/``) because production code
imports it: the fault-injection registry must be addressable from the
wire protocol, the coordinator, worker agents, the artifact cache and
the service journal — everywhere a crash can be rehearsed.
"""

from .faults import FAULTS, FaultInjected, FaultRegistry

__all__ = ["FAULTS", "FaultInjected", "FaultRegistry"]
