"""Deterministic, seeded fault injection for chaos rehearsals.

``FAULTS`` is a process-wide registry of named fault *sites* — places in
production code where a crash, a dropped frame, or a torn write can be
provoked on purpose.  Sites follow the ``TRACER`` contract: **strictly
no-op when disarmed** (one attribute check, no allocation, no locking),
so shipping them in hot paths costs nothing.

A site is armed with a spec string::

    FAULTS.arm("dist.frame_drop:p=0.05;worker.crash_before_result:count=1,exit=9")

or through the environment (read once at import, so ``autosva serve``
and spawned ``autosva worker`` subprocesses inherit the arming)::

    AUTOSVA_FAULTS="journal.torn_append:after=3,count=1,exit=57"
    AUTOSVA_FAULT_SEED=7

Per-site options:

``p=<float>``
    fire probability per eligible call (default 1.0 — always);
``count=<int>``
    maximum number of fires (default unlimited);
``after=<int>``
    skip the first N eligible calls before firing becomes possible;
``exit=<int>``
    for crash-style sites, die via ``os._exit(N)`` instead of raising
    :class:`FaultInjected` — indistinguishable from ``kill -9``;
``delay=<float>``
    sleep duration in seconds for ``FAULTS.lag`` sites (default 0.05).

Determinism: each site draws from its own ``random.Random`` seeded with
``f"{seed}:{site}"``, so a given (seed, call sequence) always fires the
same calls regardless of which other sites are armed.  Forked children
inherit the parent's RNG state — deterministic, but siblings forked from
the same state draw identical sequences; arm crash sites with ``count=``
when that matters.

Known sites (see docs/chaos.md):

=============================  ==============================================
``dist.frame_drop``            sender raises OSError instead of sending —
                               the connection dies exactly like a mid-frame
                               network reset
``dist.frame_corrupt``         one payload byte is flipped before send; the
                               receiver's decoder rejects the frame and the
                               connection is killed
``dist.frame_delay``           sender sleeps ``delay`` seconds before the
                               frame goes out
``coordinator.heartbeat_stall``  the coordinator falsely declares a live
                               worker dead (heartbeat timeout) — its tasks
                               requeue, the agent may reconnect
``worker.crash_before_result``  the agent dies after computing a result but
                               before sending it
``worker.crash_after_result``   the agent dies right after sending a result
``cache.torn_write``           an artifact-cache entry is written half-length
                               (reader must treat it as a miss)
``journal.torn_append``        a journal record is written half-length and
                               the process dies mid-append
=============================  ==============================================
"""

import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["FAULTS", "FaultInjected", "FaultRegistry"]

ENV_SPEC = "AUTOSVA_FAULTS"
ENV_SEED = "AUTOSVA_FAULT_SEED"


class FaultInjected(Exception):
    """Raised by a fired crash-style site with no ``exit=`` code."""


@dataclass
class _Site:
    name: str
    probability: float = 1.0
    count: Optional[int] = None
    after: int = 0
    exit_code: Optional[int] = None
    delay_s: float = 0.05
    calls: int = 0
    fires: int = 0
    rng: random.Random = field(default=None, repr=False)  # type: ignore


def _parse_site(text: str) -> _Site:
    name, _, options = text.partition(":")
    site = _Site(name=name.strip())
    for option in filter(None, (o.strip() for o in options.split(","))):
        key, _, value = option.partition("=")
        key = key.strip()
        if key == "p":
            site.probability = float(value)
        elif key == "count":
            site.count = int(value)
        elif key == "after":
            site.after = int(value)
        elif key == "exit":
            site.exit_code = int(value)
        elif key == "delay":
            site.delay_s = float(value)
        else:
            raise ValueError(f"unknown fault option {key!r} in {text!r}")
    if not site.name:
        raise ValueError(f"fault spec {text!r} has no site name")
    return site


class FaultRegistry:
    """Seeded registry of armable fault sites (see module docstring)."""

    def __init__(self) -> None:
        self._sites: Dict[str, _Site] = {}
        self._seed = 0
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return bool(self._sites)

    def arm(self, spec: str, seed: int = 0) -> None:
        """Arm sites from a ``site:k=v,k=v;site2:...`` spec string."""
        sites = {}
        for chunk in filter(None, (c.strip() for c in spec.split(";"))):
            site = _parse_site(chunk)
            site.rng = random.Random(f"{seed}:{site.name}")
            sites[site.name] = site
        with self._lock:
            self._seed = seed
            self._sites.update(sites)

    def arm_from_env(self, environ=os.environ) -> bool:
        spec = environ.get(ENV_SPEC, "").strip()
        if not spec:
            return False
        self.arm(spec, seed=int(environ.get(ENV_SEED, "0")))
        return True

    def disarm(self) -> None:
        with self._lock:
            self._sites = {}

    def maybe_fire(self, name: str) -> bool:
        """Decide whether the site fires on this call.

        The disarmed fast path is a single truthiness check on a dict —
        no lock, no allocation — so call sites may run unconditionally.
        """
        if not self._sites:
            return False
        with self._lock:
            site = self._sites.get(name)
            if site is None:
                return False
            site.calls += 1
            if site.calls <= site.after:
                return False
            if site.count is not None and site.fires >= site.count:
                return False
            if site.probability < 1.0 and site.rng.random() >= site.probability:
                return False
            site.fires += 1
            return True

    def die(self, name: str) -> None:
        """Execute the configured death for ``name`` unconditionally.

        ``exit=N`` specs call ``os._exit`` (no cleanup — equivalent to
        ``kill -9`` at the injection point); otherwise raises
        :class:`FaultInjected`.
        """
        site = self._sites.get(name)
        if site is not None and site.exit_code is not None:
            os._exit(site.exit_code)
        raise FaultInjected(name)

    def crash(self, name: str) -> None:
        """``maybe_fire`` + ``die`` in one call, for crash-style sites."""
        if self._sites and self.maybe_fire(name):
            self.die(name)

    def lag(self, name: str) -> None:
        """``maybe_fire`` + sleep the site's ``delay`` if it fired."""
        if self._sites and self.maybe_fire(name):
            time.sleep(self._sites[name].delay_s)

    def report(self) -> Dict[str, Dict[str, int]]:
        """Per-site call/fire counters (for gates and diagnostics)."""
        with self._lock:
            return {name: {"calls": site.calls, "fires": site.fires}
                    for name, site in self._sites.items()}


FAULTS = FaultRegistry()
FAULTS.arm_from_env()
