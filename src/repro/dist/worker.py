"""The standalone worker agent: ``autosva worker --connect HOST:PORT``.

One agent = one process on one host, serving ``--slots N`` concurrent
tasks for a coordinator.  The agent's main loop never checks a property
itself — it multiplexes the coordinator socket and its forked children's
result pipes through one ``multiprocessing.connection.wait`` call:

* a ``task`` frame decodes into a registered unit
  (:class:`~repro.api.task.PropertyTask` /
  :class:`~repro.campaign.jobs.CampaignJob`) and joins the pending queue;
* starting a task first **compiles the design on first sight** through
  this process's own :data:`~repro.api.compile.COMPILE_CACHE`
  (bracketed by ``compile_started``/``compile_done`` events so the
  coordinator sees liveness during a long frontend run), then forks a
  child that inherits the warm cache — the same one-compile-per-design
  economics the local fork pool gets for free;
* each child runs under the campaign's **per-task bounds**, enforced
  agent-side: the memory cap via ``resource.setrlimit`` inside the child
  (shared :func:`~repro.campaign.scheduler._child_main` entry point) and
  the wall-clock deadline by the agent's wait loop, which terminates
  overdue children and reports ``timeout`` results — remote execution
  must degrade per-task exactly like local execution does;
* ``heartbeat`` frames are echoed; ``steal`` requests are answered with
  a ``steal_grant`` naming the *not-yet-started* pending tasks the agent
  gives back (never a running one — started work always completes or
  times out here);
* ``shutdown`` (or coordinator EOF) terminates remaining children and
  exits;
* ``SIGTERM``/``SIGINT`` trigger a **graceful drain**: the agent sends
  a ``shutdown`` frame naming its not-yet-started pending tasks (the
  coordinator requeues them and stops dispatching here), lets running
  children finish and report normally, then closes the connection — the
  coordinator records a clean ``graceful shutdown`` departure instead
  of a false death.

``--preload module`` imports a module before serving — the hook for
registering third-party unit codecs/runners via
:func:`~repro.dist.protocol.register_unit`.
"""

from __future__ import annotations

import argparse
import importlib
import os
import random
import socket
import sys
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Dict, List, Optional, Sequence, Set

from ..campaign.scheduler import (_IDLE_WAIT_S, _child_main, fork_context,
                                  reap_child, resolve_worker_count)
from ..obs import TRACER, absorb_obs, collect_obs
from ..obs.log import (add_log_arguments, configure_from_args, fatal,
                       get_logger)
from ..testing.faults import FAULTS
from .protocol import (PROTOCOL_VERSION, FrameDecoder, ProtocolError,
                       decode_unit, runner_for, transmit,
                       validate_message)

__all__ = ["WorkerAgent", "worker_main"]


class _Disconnect(Exception):
    """Coordinator went away (EOF, reset, shutdown frame).

    ``retry`` marks connection-level losses (reset, EOF, connect
    failure) that ``--reconnect`` may heal; deliberate endings — a
    coordinator ``shutdown`` frame, a version refusal, a completed
    drain — are final regardless.
    """

    def __init__(self, reason: str, code: int = 0,
                 retry: bool = False) -> None:
        super().__init__(reason)
        self.code = code
        self.retry = retry


def _backoff_delay(attempt: int, cap: float, rng: random.Random,
                   base: float = 0.5) -> float:
    """Reconnect delay for 1-based ``attempt``: capped exponential
    backoff with jitter.

    The ceiling doubles per attempt (``base``, ``2*base``, ...) up to
    ``cap``; the returned delay is uniformly jittered into the upper
    half of the ceiling so a fleet that lost one coordinator does not
    reconnect in lockstep.
    """
    ceiling = min(cap, base * (2 ** max(0, attempt - 1)))
    return ceiling * (0.5 + 0.5 * rng.random())


@dataclass
class _Pending:
    unit: object
    timeout_s: Optional[float]
    memory_limit_mb: Optional[int]


@dataclass
class _Child:
    unit: object
    process: object
    conn: object
    started: float
    deadline: Optional[float]
    timeout_s: Optional[float]


@dataclass
class WorkerAgent:
    """One connection's worth of remote verification service."""

    host: str
    port: int
    slots: int = 1
    label: Optional[str] = None
    #: Keep retrying the initial connect for this long — lets quickstart
    #: users (and CI) start the worker before the coordinator is up.
    connect_timeout_s: float = 10.0
    quiet: bool = False
    #: Survive connection loss: reconnect with capped exponential
    #: backoff + jitter and resume the session (same ``session`` id in
    #: the new hello, so the coordinator merges this agent's history
    #: instead of double-counting a death).  Deliberate shutdowns
    #: (coordinator ``shutdown`` frame, refusal, completed drain) still
    #: exit.
    reconnect: bool = False
    #: Backoff ceiling between reconnect attempts.
    reconnect_max_s: float = 30.0
    #: Stable per-process session id, carried in every hello.
    session: str = field(default_factory=lambda: uuid.uuid4().hex)

    _sock: Optional[socket.socket] = field(default=None, repr=False)
    _decoder: FrameDecoder = field(default_factory=FrameDecoder,
                                   repr=False)
    #: Decoded-but-unprocessed messages.  All receive paths go through
    #: here so a message is never lost to recv coalescing — the hello
    #: ack and the first task can land in one TCP segment, and the
    #: handshake must not swallow what followed it.
    _inbox: deque = field(default_factory=deque, repr=False)
    _pending: deque = field(default_factory=deque, repr=False)
    _children: List[_Child] = field(default_factory=list, repr=False)
    _compiled: Set[str] = field(default_factory=set, repr=False)
    _tasks_done: int = 0
    #: Set (from a signal handler) to begin a graceful drain; the main
    #: loop notices on its next iteration — signal handlers themselves
    #: only flip the flag, they never touch the socket.
    _draining: bool = field(default=False, repr=False)
    _drain_sent: bool = field(default=False, repr=False)
    #: True once the current connection completed its hello exchange —
    #: a session that worked resets the reconnect backoff.
    _hello_ok: bool = field(default=False, repr=False)

    # -- plumbing ---------------------------------------------------------
    def _log(self, event: str, level: str = "info",
             **fields: object) -> None:
        """Structured agent log line, stamped with pid + session id.

        ``quiet`` suppresses routine (info/debug) lines — the mode the
        one-shot CLI uses for its ephemeral loopback agents — but never
        warnings or errors.
        """
        if self.quiet and level in ("debug", "info"):
            return
        logger = get_logger("dist.worker").bind(
            pid=os.getpid(), session=self.session[:8])
        getattr(logger, level, logger.info)(event, **fields)

    def _send(self, message: Dict[str, object]) -> None:
        try:
            transmit(self._sock, message)
        except OSError as exc:
            raise _Disconnect(f"send failed: {exc}", code=1,
                              retry=True) from None

    def _connect(self) -> None:
        deadline = time.monotonic() + self.connect_timeout_s
        while True:
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=5.0)
                self._sock.settimeout(None)
                return
            except OSError as exc:
                if time.monotonic() >= deadline:
                    raise _Disconnect(
                        f"could not connect to {self.host}:{self.port} "
                        f"within {self.connect_timeout_s:.0f}s: {exc}",
                        code=1, retry=True) from None
                time.sleep(0.2)

    def _hello(self, resume: bool = False) -> None:
        from .protocol import _UNIT_CODECS

        # ``session``/``resume`` are minor optional fields (no protocol
        # bump): an old coordinator ignores them and simply treats a
        # returning agent as a new one.
        self._send({
            "type": "hello", "version": PROTOCOL_VERSION,
            "slots": self.slots, "host": socket.gethostname(),
            "pid": os.getpid(), "label": self.label,
            "units": sorted(_UNIT_CODECS),
            "session": self.session, "resume": resume,
        })
        deadline = time.monotonic() + max(self.connect_timeout_s, 5.0)
        while not self._inbox:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise _Disconnect("coordinator never answered hello",
                                  code=1, retry=True)
            if mp_connection.wait([self._sock], timeout=remaining):
                self._pump()
        # The ack is the first frame a coordinator ever sends; whatever
        # arrived behind it (a task, a heartbeat) stays in the inbox for
        # the main loop.
        message = self._inbox.popleft()
        validate_message(message)
        if message["type"] == "shutdown":
            raise _Disconnect(
                f"coordinator refused us: "
                f"{message.get('reason', 'no reason given')}", code=1)
        if message["type"] != "hello":
            raise _Disconnect(
                f"coordinator opened with {message['type']!r}, expected "
                f"the hello ack", code=1)
        theirs = message.get("version")
        if theirs != PROTOCOL_VERSION:
            raise _Disconnect(
                f"coordinator speaks protocol {theirs!r}, this agent "
                f"speaks {PROTOCOL_VERSION}", code=1)
        # Minor (optional) ack field: a tracing coordinator asks the
        # fleet to record spans too; old coordinators just omit it.
        if message.get("trace"):
            TRACER.enable()

    def _pump(self) -> None:
        """Read from the socket into the inbox (never dropping frames)."""
        try:
            data = self._sock.recv(65536)
        except OSError as exc:
            raise _Disconnect(f"recv failed: {exc}", code=1,
                              retry=True) from None
        if not data:
            raise _Disconnect("coordinator closed the connection",
                              retry=True)
        self._inbox.extend(self._decoder.feed(data))

    # -- execution --------------------------------------------------------
    def _ensure_compiled(self, unit) -> None:
        """First-sight parent-side compile so children inherit it.

        Only property tasks carry their merged sources by value; design
        jobs compile inside :func:`~repro.campaign.jobs.execute_job` and
        are left to the child.  Compile failures are swallowed here: the
        child fails the same way and reports a proper per-task error.
        """
        sources = getattr(unit, "sources", None)
        module = getattr(unit, "dut_module", None)
        if not sources or not module or callable(sources):
            return
        from ..api.compile import compile_design, design_key

        defines = tuple(getattr(unit, "defines", ()))
        key = design_key(list(sources), module, defines)
        if key in self._compiled:
            return
        self._compiled.add(key)
        design = getattr(unit, "design", module)
        self._send({"type": "event", "kind": "compile_started",
                    "design": design})
        begin = time.perf_counter()
        with TRACER.span("compile", cat="compile",
                         args={"design": design, "agent": True}):
            try:
                compile_design(list(sources), module, defines)
            except Exception:
                pass
        self._send({"type": "event", "kind": "compile_done",
                    "design": design,
                    "wall_time_s": time.perf_counter() - begin})

    def begin_drain(self) -> None:
        """Request a graceful drain (safe to call from a signal handler)."""
        self._draining = True

    def _flush_drain(self) -> None:
        """Hand unstarted pending work back and announce the drain.

        Sent once up front, then again whenever a racing ``task`` frame
        (dispatched before the coordinator processed our announcement)
        lands in the pending queue — each frame's ``task_ids`` are
        requeued coordinator-side, so nothing is lost to the race.
        """
        returned = [item.unit.job_id for item in self._pending]
        self._pending.clear()
        if returned or not self._drain_sent:
            self._drain_sent = True
            self._send({"type": "shutdown", "reason": "draining",
                        "task_ids": returned})
            if returned:
                self._log("draining: returned unstarted tasks",
                          returned=len(returned))

    def _start_pending(self) -> None:
        if self._draining:
            return
        context = fork_context()
        while self._pending and len(self._children) < self.slots:
            item: _Pending = self._pending.popleft()
            self._ensure_compiled(item.unit)
            try:
                runner = runner_for(item.unit)
            except ProtocolError as exc:
                self._send({"type": "result",
                            "task_id": item.unit.job_id,
                            "status": "error", "payload": None,
                            "error": str(exc), "wall_time_s": 0.0})
                continue
            parent_conn, child_conn = context.Pipe(duplex=False)
            process = context.Process(
                target=_child_main,
                args=(child_conn, runner, item.unit,
                      item.memory_limit_mb))
            process.start()
            child_conn.close()
            now = time.monotonic()
            self._children.append(_Child(
                unit=item.unit, process=process, conn=parent_conn,
                started=now,
                deadline=(now + item.timeout_s)
                if item.timeout_s is not None else None,
                timeout_s=item.timeout_s))
            self._send({"type": "event", "kind": "task_started",
                        "task_id": item.unit.job_id})

    def _finish_child(self, child: _Child, status: str,
                      payload, error: Optional[str], obs=None) -> None:
        self._tasks_done += 1
        message = {
            "type": "result", "task_id": child.unit.job_id,
            "status": status, "payload": payload, "error": error,
            "wall_time_s": time.monotonic() - child.started,
        }
        # Fold the child's telemetry into the agent's buffers, then drain
        # everything recorded since the last result (child spans, the
        # agent's compile spans, metric deltas) onto this frame.  "obs" is
        # a minor optional field — old coordinators ignore it.
        absorb_obs(obs)
        shipped = collect_obs()
        if shipped is not None:
            message["obs"] = shipped
        # Chaos sites: die with a computed-but-unsent result (the
        # coordinator must requeue it) or right after sending it (the
        # coordinator must not double-report it).
        FAULTS.crash("worker.crash_before_result")
        try:
            self._send(message)
        except (TypeError, ProtocolError) as exc:
            # A payload the wire cannot carry (non-JSON types from a
            # plugin runner, >frame-limit blob) must degrade to a
            # per-task error — never kill the agent and cascade the
            # poisonous task across the fleet.
            self._send({
                "type": "result", "task_id": child.unit.job_id,
                "status": "error", "payload": None,
                "error": f"result payload not wire-serializable: {exc}",
                "wall_time_s": message["wall_time_s"],
            })
        FAULTS.crash("worker.crash_after_result")

    def _reap_children(self) -> None:
        # The reap decision (result-beats-deadline, EOF = died, overdue =
        # terminate) is the shared scheduler helper, so local and remote
        # execution scopes cannot drift apart.
        now = time.monotonic()
        still: List[_Child] = []
        for child in self._children:
            outcome = reap_child(child.conn, child.process,
                                 child.deadline, now, child.timeout_s)
            if outcome is None:
                still.append(child)
                continue
            self._finish_child(child, *outcome)
        self._children = still

    # -- protocol handling ------------------------------------------------
    def _handle(self, message: Dict[str, object]) -> None:
        validate_message(message)
        kind = message["type"]
        if kind == "task":
            body = message["task"]
            try:
                unit = decode_unit(body)
            except ProtocolError as exc:
                # A unit this agent cannot decode (missing --preload
                # plugin, malformed payload) must degrade to a per-task
                # error, not kill the agent — dying would make the
                # coordinator requeue the same poisonous task onto the
                # next agent until the whole fleet is gone.  Without a
                # recoverable id the coordinator could never match an
                # error result, so only then is dying the lesser evil.
                task_id = None
                if isinstance(body, dict):
                    task_id = body.get("task_id") or body.get("job_id")
                if not isinstance(task_id, str):
                    raise
                self._send({"type": "result", "task_id": task_id,
                            "status": "error", "payload": None,
                            "error": str(exc), "wall_time_s": 0.0})
                return
            self._pending.append(_Pending(
                unit=unit, timeout_s=message.get("timeout_s"),
                memory_limit_mb=message.get("memory_limit_mb")))
        elif kind == "heartbeat":
            self._send({"type": "heartbeat", "seq": message["seq"]})
        elif kind == "steal":
            # Start anything a free slot can take *before* granting:
            # a task and the steal request for it can arrive in one recv
            # batch (the coordinator probes the tail right after
            # dispatching), and granting back work we could be running
            # would ping-pong the task between queue and wire forever.
            self._start_pending()
            granted: List[str] = []
            want = int(message["max"])
            while self._pending and len(granted) < want:
                item = self._pending.pop()     # give back the tail first
                granted.append(item.unit.job_id)
            self._send({"type": "steal_grant", "task_ids": granted})
            if granted:
                self._log("granted tasks back to the coordinator",
                          granted=len(granted))
        elif kind == "shutdown":
            raise _Disconnect(
                f"shutdown: {message.get('reason', 'campaign complete')}")
        elif kind == "hello":
            pass                               # late/duplicate ack
        else:                                  # result/event/steal_grant
            raise ProtocolError(
                f"coordinator sent a worker-only message: {kind}")

    def _wait_timeout(self) -> float:
        deadlines = [child.deadline for child in self._children
                     if child.deadline is not None]
        if not deadlines:
            return _IDLE_WAIT_S
        return min(max(0.0, min(deadlines) - time.monotonic()),
                   _IDLE_WAIT_S)

    # -- entry point ------------------------------------------------------
    def _serve_once(self, resume: bool = False) -> None:
        """One connection's lifetime: connect, hello, serve until lost.

        Only raises (:class:`_Disconnect` / :class:`ProtocolError`) —
        a normal return does not exist.  Per-connection state (decoder,
        inbox, unstarted pending tasks) resets on entry; running
        children are terminated on exit because their results can no
        longer be matched — the coordinator requeued everything this
        connection had in flight, so finishing them would only produce
        frames the next connection must not send.  The in-process
        compile cache survives, so a resumed session keeps its warm
        designs.
        """
        self._decoder = FrameDecoder()
        self._inbox.clear()
        self._pending.clear()
        self._drain_sent = False
        try:
            self._connect()
            self._hello(resume=resume)
            self._hello_ok = True
            self._log("reconnected" if resume else "connected",
                      coordinator=f"{self.host}:{self.port}",
                      slots=self.slots)
            while True:
                if self._draining:
                    self._flush_drain()
                    if not self._children:
                        raise _Disconnect(
                            "drained cleanly after signal", code=0)
                self._start_pending()
                while self._inbox:
                    self._handle(self._inbox.popleft())
                    self._start_pending()
                waitables = [self._sock] + \
                    [child.conn for child in self._children]
                ready = mp_connection.wait(waitables,
                                           timeout=self._wait_timeout())
                if self._sock in ready:
                    self._pump()
                self._reap_children()
        finally:
            for child in self._children:
                child.process.terminate()
                child.process.join()
            self._children = []
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:
                    pass
                self._sock = None

    def run(self) -> int:
        rng = random.Random(self.session)
        attempt = 0
        while True:
            self._hello_ok = False
            try:
                self._serve_once(resume=attempt > 0)
            except _Disconnect as exc:
                if not (self.reconnect and exc.retry
                        and not self._draining):
                    self._log("exiting", reason=str(exc),
                              tasks_done=self._tasks_done)
                    return exc.code
                self._log("connection lost", level="warn",
                          reason=str(exc))
            except ProtocolError as exc:
                # A desynced stream is a connection-level failure too:
                # reconnecting resets the framing on both ends.
                if not (self.reconnect and not self._draining):
                    self._log("protocol error", level="error",
                              detail=str(exc))
                    return 1
                self._log("protocol error, resetting connection",
                          level="warn", detail=str(exc))
            if self._hello_ok:
                attempt = 0        # the session worked: back off afresh
            attempt += 1
            delay = _backoff_delay(attempt, self.reconnect_max_s, rng)
            self._log("reconnecting", delay_s=round(delay, 1),
                      attempt=attempt)
            time.sleep(delay)


def build_worker_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="autosva worker",
        description="Serve verification tasks to a campaign coordinator "
                    "over TCP (see docs/distributed.md; trusted networks "
                    "only — the v1 protocol has no auth).")
    parser.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator address, e.g. 127.0.0.1:7450")
    parser.add_argument("--slots", default="1", metavar="N|auto",
                        help="concurrent task slots (auto = CPU count; "
                             "default 1)")
    parser.add_argument("--label", default=None,
                        help="free-form label shown in coordinator "
                             "reports")
    parser.add_argument("--preload", action="append", default=[],
                        metavar="MODULE",
                        help="import MODULE before serving (registers "
                             "third-party unit codecs/runners); "
                             "repeatable")
    parser.add_argument("--connect-timeout", type=float, default=10.0,
                        metavar="S",
                        help="keep retrying the initial connect for S "
                             "seconds (default 10)")
    parser.add_argument("--reconnect", action="store_true",
                        help="survive connection loss: retry with capped "
                             "exponential backoff + jitter and resume the "
                             "session (coordinator shutdowns still exit)")
    parser.add_argument("--reconnect-max-delay", type=float, default=30.0,
                        metavar="S",
                        help="backoff ceiling between reconnect attempts "
                             "(default 30)")
    add_log_arguments(parser)
    return parser


def worker_main(argv: Sequence[str]) -> int:
    try:
        import faulthandler
        import signal as signal_mod
        # Ops hook: SIGUSR1 dumps every thread's stack (the agent's and,
        # because children are forked, a stuck task child's too).
        faulthandler.register(signal_mod.SIGUSR1)
    except (ImportError, AttributeError, ValueError):
        pass       # non-POSIX platform: no dump hook
    try:
        args = build_worker_parser().parse_args(list(argv))
    except SystemExit as exc:
        return 0 if exc.code in (0, None) else 1
    configure_from_args(args)
    try:
        slots = resolve_worker_count(args.slots, flag="--slots")
    except ValueError as exc:
        return fatal("autosva worker", str(exc))
    from .coordinator import parse_address

    try:
        host, port = parse_address(args.connect)
    except ValueError as exc:
        return fatal("autosva worker", "invalid --connect",
                     detail=str(exc))
    for module in args.preload:
        try:
            importlib.import_module(module)
        except ImportError as exc:
            return fatal("autosva worker", "cannot preload module",
                         module=module, detail=str(exc))
    agent = WorkerAgent(host=host, port=port, slots=slots,
                        label=args.label,
                        connect_timeout_s=args.connect_timeout,
                        reconnect=args.reconnect,
                        reconnect_max_s=args.reconnect_max_delay)
    try:
        import signal as signal_mod

        # Graceful drain on the usual stop signals (systemd stop,
        # Ctrl-C, orchestrator scale-down): the handler only flips a
        # flag; the main loop returns unstarted work and finishes
        # running children before exiting.
        signal_mod.signal(signal_mod.SIGTERM,
                          lambda *_: agent.begin_drain())
        signal_mod.signal(signal_mod.SIGINT,
                          lambda *_: agent.begin_drain())
    except (ImportError, AttributeError, ValueError, OSError):
        pass       # non-POSIX platform or non-main thread: hard stop only
    return agent.run()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(worker_main(sys.argv[1:]))
