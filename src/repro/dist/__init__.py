"""Distributed verification fabric: remote workers over TCP.

This package runs verification campaigns across processes and hosts
behind the exact same :class:`~repro.campaign.scheduler.Scheduler` /
:class:`~repro.api.session.VerificationSession` API as the local
multiprocessing path — every verdict is bit-identical, only where the
solver cycles burn changes.

Three layers:

* :mod:`repro.dist.protocol` — the versioned, size-framed
  newline-delimited-JSON wire format (hello/capabilities, task, event,
  result, heartbeat, steal/steal-grant, shutdown) plus the unit codec
  that ships :class:`~repro.api.task.PropertyTask` /
  :class:`~repro.campaign.jobs.CampaignJob` payloads across the wire;
* :mod:`repro.dist.worker` — the standalone worker agent
  (``autosva worker --connect HOST:PORT --slots N``): compiles designs
  on first sight through its own process-local compile cache, runs each
  task in a forked child under the campaign's wall-clock/memory bounds,
  and streams events and results back;
* :mod:`repro.dist.coordinator` — :class:`~repro.dist.coordinator.TcpTransport`,
  the transport that plugs into the scheduler as a pool of remote slots:
  capacity-weighted cost dispatch, heartbeat liveness, requeue-on-death
  with dead-worker exclusion, and steal-grants that reclaim prefetched
  tasks from busy workers at the campaign tail.

Security posture (v1): **trusted networks only** — frames are neither
authenticated nor encrypted.  Bind the coordinator to loopback or a
private segment; see ``docs/distributed.md``.
"""

from .coordinator import TcpTransport, parse_address, spawn_local_workers
from .protocol import (PROTOCOL_VERSION, FrameDecoder, ProtocolError,
                       decode_unit, encode_frame, encode_unit,
                       register_unit)
from .worker import WorkerAgent, worker_main

__all__ = [
    "PROTOCOL_VERSION", "FrameDecoder", "ProtocolError",
    "decode_unit", "encode_frame", "encode_unit", "register_unit",
    "TcpTransport", "parse_address", "spawn_local_workers",
    "WorkerAgent", "worker_main",
]
