"""The fabric wire protocol: size-framed JSON messages + the unit codec.

Framing
-------

Every message is one JSON object on the wire, framed as::

    <decimal byte length>\\n<compact JSON, UTF-8>\\n

— newline-delimited for eyeball/`nc` debuggability, size-prefixed so the
reader never has to scan payload bytes for delimiters (property-task
sources are ~100 KB of RTL text and may legally contain anything).
:func:`encode_frame` produces one frame; :class:`FrameDecoder` is the
incremental reader both endpoints feed raw ``recv()`` chunks into.
Malformed input — non-numeric length, oversized frame, bad JSON, a
non-object payload — raises :class:`ProtocolError`, never ``KeyError``
or silent desync.

Messages
--------

All messages are JSON objects with a ``type`` field:

===============  ======  ====================================================
type             sender  meaning
===============  ======  ====================================================
``hello``        both    worker: version + capabilities (slots, host, pid,
                         unit types); coordinator: version ack
``task``         coord   one unit of work + its execution bounds
``event``        worker  progress: ``task_started``, ``compile_started`` /
                         ``compile_done`` (first-sight design compile)
``result``       worker  a task finished: status, payload, error, wall time
``heartbeat``    both    liveness ping (coordinator) / echo (worker)
``steal``        coord   give back up to ``max`` not-yet-started tasks
``steal_grant``  worker  the task ids actually relinquished (may be empty)
``shutdown``     both    coord: drain and exit (``reason`` for logs);
                         worker: graceful-drain announcement — optional
                         ``task_ids`` name the unstarted tasks handed
                         back for requeue
===============  ======  ====================================================

Version negotiation: the worker's ``hello`` carries
:data:`PROTOCOL_VERSION`; the coordinator accepts only an exact match
(there is one version so far) and otherwise answers ``shutdown`` with the
mismatch in ``reason`` — see :func:`negotiate_version`.

Unit codec
----------

``task`` messages carry a *unit* — any registered schedulable job type —
as plain JSON.  :func:`register_unit` maps a type name to (class, encode,
decode, runner); :class:`~repro.api.task.PropertyTask` and
:class:`~repro.campaign.jobs.CampaignJob` are built in, and worker-side
plugins (``autosva worker --preload module``) can add more.  The decode
path reconstructs frozen dataclasses exactly (tuples, nested
:class:`~repro.formal.engine.EngineConfig`), so a round-tripped unit
compares ``==`` to the original — the property the fuzz tests pin down.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Callable, Dict, List, Tuple, Type

from ..testing.faults import FAULTS

__all__ = ["PROTOCOL_VERSION", "MAX_FRAME_BYTES", "MESSAGE_TYPES",
           "ProtocolError", "FrameDecoder", "encode_frame", "transmit",
           "negotiate_version", "validate_message",
           "register_unit", "encode_unit", "decode_unit", "runner_for"]

#: Bump on any incompatible change to framing, message fields or the unit
#: codec.  Negotiated in the hello exchange; mismatches are refused.
PROTOCOL_VERSION = 1

#: Hard upper bound on one frame.  The largest legitimate payload is a
#: task's merged RTL + testbench source (~100 KB on this corpus); 64 MB
#: leaves orders of magnitude of headroom while making a corrupt or
#: hostile length prefix fail fast instead of exhausting memory.
MAX_FRAME_BYTES = 64 * 1024 * 1024

MESSAGE_TYPES = ("hello", "task", "event", "result", "heartbeat",
                 "steal", "steal_grant", "shutdown")

#: type -> fields that must be present (beyond ``type`` itself).
_REQUIRED_FIELDS: Dict[str, Tuple[str, ...]] = {
    "hello": ("version",),
    "task": ("task",),
    "event": ("kind",),
    "result": ("task_id", "status"),
    "heartbeat": ("seq",),
    "steal": ("max",),
    "steal_grant": ("task_ids",),
    "shutdown": (),
}


class ProtocolError(Exception):
    """Malformed frame, unknown message, or version mismatch."""


# -- framing ---------------------------------------------------------------

def encode_frame(message: Dict[str, object]) -> bytes:
    """Serialize one message as a size-prefixed JSON line."""
    data = json.dumps(message, separators=(",", ":"),
                      sort_keys=True).encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(data)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit")
    return b"%d\n%s\n" % (len(data), data)


def transmit(sock, message: Dict[str, object]) -> None:
    """Encode and send one frame — through the wire fault sites.

    The single choke point both fabric ends use for every outgoing
    frame, so chaos rehearsals (:mod:`repro.testing.faults`) can model a
    flaky network without touching either peer's logic:

    * ``dist.frame_delay`` — sleep before the frame goes out;
    * ``dist.frame_corrupt`` — flip one payload byte; the receiver's
      decoder rejects the frame and kills the connection, exactly like
      real line noise;
    * ``dist.frame_drop`` — raise ``OSError`` without sending, exactly
      like a connection reset mid-frame (the frame is *not* half-sent,
      matching TCP's all-or-nothing delivery of a died connection's
      tail).

    Either fault ends the connection; recovery is the ordinary death
    machinery — coordinator requeues, worker reconnects.
    """
    data = encode_frame(message)
    if FAULTS.enabled:
        FAULTS.lag("dist.frame_delay")
        if FAULTS.maybe_fire("dist.frame_corrupt"):
            middle = len(data) // 2
            data = data[:middle] + bytes([data[middle] ^ 0x5A]) \
                + data[middle + 1:]
        if FAULTS.maybe_fire("dist.frame_drop"):
            raise OSError("injected fault: frame dropped (connection reset)")
    sock.sendall(data)


class FrameDecoder:
    """Incremental frame reader: feed ``recv()`` chunks, get messages.

    Tolerates arbitrary chunking (a frame split at any byte, many frames
    in one chunk).  Any malformed input raises :class:`ProtocolError`;
    after an error the stream is unrecoverable by design — framing
    errors on a trusted transport mean a broken peer, not line noise.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Dict[str, object]]:
        self._buffer.extend(data)
        messages: List[Dict[str, object]] = []
        while True:
            newline = self._buffer.find(b"\n")
            if newline < 0:
                if len(self._buffer) > 20:
                    raise ProtocolError(
                        "frame header exceeds 20 bytes without a newline")
                return messages
            header = bytes(self._buffer[:newline])
            try:
                length = int(header)
            except ValueError:
                raise ProtocolError(
                    f"non-numeric frame length {header!r}") from None
            if length < 0 or length > MAX_FRAME_BYTES:
                raise ProtocolError(f"frame length {length} out of range")
            end = newline + 1 + length
            if len(self._buffer) < end + 1:
                return messages          # payload (or trailer) incomplete
            payload = bytes(self._buffer[newline + 1:end])
            if self._buffer[end:end + 1] != b"\n":
                raise ProtocolError("frame missing trailing newline")
            del self._buffer[:end + 1]
            try:
                message = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as exc:
                raise ProtocolError(f"undecodable frame payload: {exc}") \
                    from None
            if not isinstance(message, dict):
                raise ProtocolError(
                    f"frame payload is {type(message).__name__}, "
                    f"expected an object")
            messages.append(message)


# -- message validation ----------------------------------------------------

def validate_message(message: Dict[str, object]) -> Dict[str, object]:
    """Check a decoded message's type and required fields.

    Returns the message (for chaining) or raises :class:`ProtocolError`
    naming exactly what is missing — the fabric never surfaces a raw
    ``KeyError`` for a peer's malformed traffic.
    """
    kind = message.get("type")
    if kind not in MESSAGE_TYPES:
        raise ProtocolError(f"unknown message type {kind!r}")
    missing = [name for name in _REQUIRED_FIELDS[kind]
               if name not in message]
    if missing:
        raise ProtocolError(
            f"{kind} message missing field(s): {', '.join(missing)}")
    return message


def negotiate_version(theirs: object) -> int:
    """Version handshake: exact match only (one protocol version so far).

    Returns the agreed version or raises :class:`ProtocolError` with a
    message fit to ship back in a ``shutdown`` frame.
    """
    if not isinstance(theirs, int) or theirs != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: peer speaks {theirs!r}, "
            f"this build speaks {PROTOCOL_VERSION}")
    return PROTOCOL_VERSION


# -- unit codec ------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class _UnitCodec:
    name: str
    cls: Type
    encode: Callable[[object], Dict[str, object]]
    decode: Callable[[Dict[str, object]], object]
    runner: Callable[[object], Dict[str, object]]


_UNIT_CODECS: Dict[str, _UnitCodec] = {}


def register_unit(name: str, cls: Type,
                  encode: Callable[[object], Dict[str, object]],
                  decode: Callable[[Dict[str, object]], object],
                  runner: Callable[[object], Dict[str, object]]) -> None:
    """Register a schedulable unit type for wire transport.

    ``encode`` maps an instance to a JSON-able dict (without the ``unit``
    tag, which this layer adds); ``decode`` inverts it exactly;
    ``runner`` is the worker-side entry point.  Registering an existing
    name replaces it, so tests and plugins can override built-ins.
    """
    _UNIT_CODECS[name] = _UnitCodec(name, cls, encode, decode, runner)


def encode_unit(unit: object) -> Dict[str, object]:
    """Serialize any registered unit to a tagged JSON-able dict."""
    for codec in _UNIT_CODECS.values():
        if isinstance(unit, codec.cls):
            payload = codec.encode(unit)
            return {"unit": codec.name, **payload}
    raise ProtocolError(
        f"no wire codec registered for {type(unit).__name__}; "
        f"known units: {', '.join(sorted(_UNIT_CODECS))}")


def decode_unit(data: Dict[str, object]) -> object:
    """Reconstruct a unit from its wire form."""
    name = data.get("unit")
    codec = _UNIT_CODECS.get(name)
    if codec is None:
        raise ProtocolError(
            f"unknown unit type {name!r}; known units: "
            f"{', '.join(sorted(_UNIT_CODECS))} (worker missing a "
            f"--preload plugin?)")
    body = {key: value for key, value in data.items() if key != "unit"}
    try:
        return codec.decode(body)
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(
            f"malformed {name} unit payload: {exc}") from None


def runner_for(unit: object) -> Callable[[object], Dict[str, object]]:
    """The worker-side execution function for a decoded unit."""
    for codec in _UNIT_CODECS.values():
        if isinstance(unit, codec.cls):
            return codec.runner
    raise ProtocolError(f"no runner registered for {type(unit).__name__}")


# -- built-in units --------------------------------------------------------

def _encode_config(config) -> Dict[str, object]:
    return dataclasses.asdict(config)


def _decode_config(data: Dict[str, object]):
    from ..formal.engine import EngineConfig

    fields = {f.name for f in dataclasses.fields(EngineConfig)}
    kwargs = {key: value for key, value in data.items() if key in fields}
    if "kliveness_rounds" in kwargs:
        kwargs["kliveness_rounds"] = tuple(kwargs["kliveness_rounds"])
    return EngineConfig(**kwargs)


def _encode_property_task(task) -> Dict[str, object]:
    body = dataclasses.asdict(task)
    body["engine_config"] = _encode_config(task.engine_config)
    return body


def _decode_property_task(data: Dict[str, object]):
    from ..api.task import PropertyTask

    return PropertyTask(
        task_id=data["task_id"], design=data["design"],
        dut_module=data["dut_module"], sources=tuple(data["sources"]),
        engine_config=_decode_config(data["engine_config"]),
        properties=tuple(data.get("properties", ())),
        variant=data.get("variant", "fixed"),
        defines=tuple(data.get("defines", ())),
        kinds=tuple(data.get("kinds", ())),
        coi_sizes=tuple(int(n) for n in data.get("coi_sizes", ())),
        order=tuple(int(n) for n in data.get("order", ())))


def _encode_campaign_job(job) -> Dict[str, object]:
    body = dataclasses.asdict(job)
    body["engine_config"] = _encode_config(job.engine_config)
    return body


def _decode_campaign_job(data: Dict[str, object]):
    from ..campaign.jobs import CampaignJob

    return CampaignJob(
        job_id=data["job_id"], case_id=data["case_id"],
        case_name=data["case_name"], dut_module=data["dut_module"],
        variant=data["variant"], dut_file=data["dut_file"],
        extra_files=tuple(data.get("extra_files", ())),
        engine_config=_decode_config(data["engine_config"]),
        expect_proof=data.get("expect_proof"),
        expect_cex=data.get("expect_cex"),
        config_index=data.get("config_index"))


def _register_builtins() -> None:
    from ..api.task import PropertyTask, execute_task
    from ..campaign.jobs import CampaignJob, execute_job

    register_unit("property-task", PropertyTask,
                  _encode_property_task, _decode_property_task,
                  execute_task)
    register_unit("campaign-job", CampaignJob,
                  _encode_campaign_job, _decode_campaign_job,
                  execute_job)


_register_builtins()
