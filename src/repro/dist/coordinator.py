"""The coordinator side of the fabric: :class:`TcpTransport`.

A :class:`TcpTransport` plugs into the
:class:`~repro.campaign.scheduler.Scheduler` as its execution backend:
the scheduler keeps everything verdict-relevant (source pulling, cache
replay at admission, steal bookkeeping, event ordering) and this
transport answers the four backend questions — how many slots are free,
where does this job run, what finished, and what must be requeued.

Mechanics:

* **Pool membership** — workers connect to the listen socket and
  identify themselves with a versioned ``hello`` (slots, host, pid);
  capacity grows and shrinks as agents come and go, mid-campaign
  included.  ``min_workers`` is a *startup quorum*: dispatch is gated
  (capacity reported as 0) until that many agents joined, so a campaign
  can be started before its fleet — but once reached, the gate never
  re-engages, because blocking dispatch when deaths shrink the pool
  would deadlock the requeues that recover a dead worker's tasks.
* **Capacity-weighted cost dispatch** — each worker advertises ``slots``
  and may hold ``prefetch`` extra queued tasks (hiding dispatch latency
  behind the running task).  The next job — the scheduler issues
  costliest-first under LPT scheduling — goes to the worker with the
  lowest estimated load *relative to its capacity*
  (``(load + cost) / slots``), the streaming analogue of LPT's
  least-loaded-bin rule, priced by the same
  :class:`~repro.campaign.costmodel.CostModel` the scheduler groups
  with.
* **Liveness** — every worker is pinged every ``heartbeat_s``; any frame
  (echo, event, result) refreshes its ``last_seen``.  A worker silent
  past ``liveness_timeout_s`` — or one whose socket EOFs/resets, e.g.
  ``kill -9`` — is declared dead: its in-flight tasks are handed back to
  the scheduler as requeues **excluded from that worker id**, exactly
  once per death, and the campaign converges on the survivors.
* **Graceful departures** — an agent stopping on SIGTERM/SIGINT
  announces its drain with a worker-sent ``shutdown`` frame naming the
  unstarted tasks it hands back; those requeue immediately (no
  exclusion — the agent is leaving, not dead), its running tasks finish
  and report normally, and its eventual EOF is recorded as a clean
  ``graceful shutdown`` departure rather than a death.
* **Tail steal grants** — when the scheduler has idle slots and nothing
  queued, :meth:`reclaim` asks busy workers to give back tasks they have
  not *started* (prefetched backlog).  Granted tasks re-enter the
  scheduler queue, where ordinary work stealing may re-split them for
  the idle workers.  A started task is never reclaimed — it finishes or
  times out where it is, so no work is ever executed twice.

Security posture (v1): none — frames are cleartext and unauthenticated.
Bind to loopback or a trusted segment only (see ``docs/distributed.md``).
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..campaign.scheduler import _IDLE_WAIT_S, JobResult
from ..obs import METRICS, TRACER, absorb_obs
from ..obs.log import get_logger
from ..testing.faults import FAULTS
from .protocol import (PROTOCOL_VERSION, FrameDecoder, ProtocolError,
                       encode_frame, encode_unit, negotiate_version,
                       transmit, validate_message)

__all__ = ["TcpTransport", "parse_address", "spawn_local_workers"]

_LOG = get_logger("dist.coordinator")


def parse_address(text: str) -> Tuple[str, int]:
    """Parse a ``HOST:PORT`` listen/connect spec (port 0 = ephemeral)."""
    host, _, port_text = text.rpartition(":")
    try:
        port = int(port_text)
        if not host or port < 0 or port > 65535:
            raise ValueError
    except ValueError:
        raise ValueError(
            f"expected HOST:PORT, got {text!r}") from None
    return host, port


def spawn_local_workers(address: Tuple[str, int], count: int,
                        slots: int = 1,
                        preload: Sequence[str] = (),
                        quiet: bool = True,
                        reconnect: bool = False) -> List[subprocess.Popen]:
    """Start ``count`` worker agents on this host as subprocesses.

    A convenience for the loopback quickstart, tests and CI — production
    fleets start ``autosva worker`` themselves (one per host/container).
    The child environment inherits this process plus the parent's
    ``repro`` package location on ``PYTHONPATH``, so spawned agents
    resolve the same code the coordinator runs.
    """
    import repro

    host, port = address
    package_root = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (package_root + os.pathsep + existing
                             if existing else package_root)
    command = [sys.executable, "-m", "repro.dist.worker",
               "--connect", f"{host}:{port}", "--slots", str(slots)]
    if reconnect:
        command += ["--reconnect"]
    for module in preload:
        command += ["--preload", module]
    sink = subprocess.DEVNULL if quiet else None
    return [subprocess.Popen(command, env=env, stdout=sink, stderr=sink)
            for _ in range(count)]


def _obs_clock_offset(obs: Dict[str, object]) -> float:
    """Timestamp shift for spans arriving from a remote agent.

    Span timestamps are ``time.monotonic()`` seconds, whose base is
    per-host (boot-relative on Linux).  Loopback agents share this
    host's clock and need no shift; an agent on another host can be
    arbitrarily far off.  Heuristic: if the newest incoming span ended
    within 5 minutes of *our* now, treat the clocks as shared (offset
    0); otherwise pin that newest end to now, which keeps the remote
    spans in a plausible position on the campaign timeline (their
    *relative* layout — the part that matters for overlap analysis — is
    exact either way).
    """
    spans = obs.get("spans") or []
    ends = [float(span.get("ts", 0.0)) + float(span.get("dur", 0.0))
            for span in spans]
    if not ends:
        return 0.0
    latest = max(ends)
    now = time.monotonic()
    if abs(now - latest) < 300.0:
        return 0.0
    return now - latest


@dataclass
class _RemoteWorker:
    """Coordinator-side state for one connected agent."""

    sock: socket.socket
    seq: int                               # connection order (determinism)
    decoder: FrameDecoder = field(default_factory=FrameDecoder)
    worker_id: Optional[str] = None        # host:pid once hello'd
    label: Optional[str] = None
    slots: int = 0
    ready: bool = False
    connected_at: float = 0.0
    last_seen: float = 0.0
    last_ping: float = 0.0
    ping_seq: int = 0
    #: Outstanding pings: seq -> send time; echoes pop their entry and
    #: feed the RTT accumulators below.
    ping_sent: Dict[int, float] = field(default_factory=dict)
    rtt_min: Optional[float] = None
    rtt_max: Optional[float] = None
    rtt_total: float = 0.0
    rtt_samples: int = 0
    steal_pending: bool = False
    #: The agent announced a graceful drain (worker-sent ``shutdown``):
    #: it gets no new work, its running tasks finish normally, and its
    #: eventual EOF is a clean departure, not a death.
    draining: bool = False
    #: Liveness kills are suspended until this time: the agent announced
    #: a first-sight compile (``compile_started``), which runs
    #: synchronously in its event loop and legitimately blocks heartbeat
    #: echoes until ``compile_done``.
    grace_until: float = 0.0
    assigned: Dict[int, object] = field(default_factory=dict)
    costs: Dict[int, float] = field(default_factory=dict)
    started: set = field(default_factory=set)   # job_ids seen starting
    load: float = 0.0
    #: Agent-chosen session id from the hello (stable across that
    #: process's reconnects); None for agents predating the field.
    session: Optional[str] = None
    #: Times this agent resumed its session on a fresh connection.
    reconnects: int = 0
    # lifetime stats (survive into worker_stats after departure)
    tasks_done: int = 0
    busy_s: float = 0.0
    compiles: int = 0
    steals_granted: int = 0
    departed: Optional[str] = None         # reason, once gone
    departed_at: float = 0.0

    def free(self, prefetch: int) -> int:
        if not self.ready or self.draining:
            return 0
        return max(0, self.slots + prefetch - len(self.assigned))

    def record_rtt(self, rtt_s: float) -> None:
        self.rtt_samples += 1
        self.rtt_total += rtt_s
        if self.rtt_min is None or rtt_s < self.rtt_min:
            self.rtt_min = rtt_s
        if self.rtt_max is None or rtt_s > self.rtt_max:
            self.rtt_max = rtt_s

    def stats(self, now: float) -> Dict[str, object]:
        lifetime = max(1e-9, (self.departed_at or now) - self.connected_at)
        rtt = None
        if self.rtt_samples:
            rtt = {
                "min": round(self.rtt_min * 1000.0, 3),
                "mean": round(self.rtt_total / self.rtt_samples
                              * 1000.0, 3),
                "max": round(self.rtt_max * 1000.0, 3),
                "samples": self.rtt_samples,
            }
        return {
            "worker": self.worker_id or "(handshaking)",
            "label": self.label,
            "slots": self.slots,
            "tasks": self.tasks_done,
            "busy_s": round(self.busy_s, 3),
            "utilization": (round(self.busy_s / (self.slots * lifetime), 4)
                            if self.slots else 0.0),
            "steals_granted": self.steals_granted,
            "compiles": self.compiles,
            "heartbeat_rtt_ms": rtt,
            "reconnects": self.reconnects,
            "departed": self.departed,
        }


class TcpTransport:
    """A pool of remote worker agents behind the scheduler interface.

    A transport instance powers exactly **one** campaign run: the
    scheduler shuts the fleet down (``shutdown`` frames, listener
    closed, spawned agents reaped) when its run completes, because idle
    agents waiting on a dead campaign help nobody.  Reusing a consumed
    transport raises a clear :class:`~repro.core.language.AutoSVAError`
    — to compare several runs (as the smoke gates do), build one
    transport + fleet per run.  Post-run ``worker_stats()`` stays
    available.
    """

    wait_when_idle = True
    remote = True

    def __init__(self, listen: Tuple[str, int] = ("127.0.0.1", 0),
                 heartbeat_s: float = 2.0,
                 liveness_timeout_s: float = 30.0,
                 compile_grace_s: float = 300.0,
                 prefetch: int = 1,
                 min_workers: int = 1,
                 worker_timeout_s: Optional[float] = None) -> None:
        if isinstance(listen, str):
            listen = parse_address(listen)
        if prefetch < 0:
            raise ValueError("prefetch must be >= 0")
        if min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        self.heartbeat_s = heartbeat_s
        self.liveness_timeout_s = liveness_timeout_s
        self.compile_grace_s = compile_grace_s
        self.prefetch = prefetch
        self.min_workers = min_workers
        self.worker_timeout_s = worker_timeout_s
        self.timeout_s: Optional[float] = None
        self.memory_limit_mb: Optional[int] = None
        self.cost_of: Optional[Callable] = None

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(listen)
        self._listener.listen(16)
        #: The actual bound address — with port 0 this is where workers
        #: must ``--connect``.
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]

        self._workers: List[_RemoteWorker] = []
        self._departed: List[_RemoteWorker] = []
        self._spawned: List[subprocess.Popen] = []
        self._next_seq = 0
        self._created = time.monotonic()
        #: When the pool became unable to dispatch (no ready workers, or
        #: startup quorum not yet met); None while dispatch is possible.
        #: ``worker_timeout_s`` measures against this, so a fleet that
        #: dies mid-campaign times out just like one that never arrived.
        self._starved_since: Optional[float] = self._created
        # min_workers is a *startup quorum*: once the pool has reached it,
        # dispatch keeps flowing even if deaths shrink the pool below it —
        # blocking there would deadlock the very requeues that recover a
        # killed worker's tasks.
        self._quorum_reached = False
        self._finished: List[Tuple[int, object, JobResult]] = []
        self._requeue: List[Tuple[int, object, Optional[str]]] = []
        self._closed = False

    # -- scheduler contract ------------------------------------------------
    def bind(self, runner: Callable, timeout_s: Optional[float],
             memory_limit_mb: Optional[int],
             cost_of: Optional[Callable] = None) -> None:
        # ``runner`` is deliberately unused: the worker agent picks the
        # execution function from the unit's registered codec, so a
        # coordinator cannot ship arbitrary callables over the wire.
        self.timeout_s = timeout_s
        self.memory_limit_mb = memory_limit_mb
        self.cost_of = cost_of

    def _ready_workers(self) -> List[_RemoteWorker]:
        return [worker for worker in self._workers if worker.ready]

    def _quorum(self) -> bool:
        if not self._quorum_reached and \
                len(self._ready_workers()) >= self.min_workers:
            self._quorum_reached = True
        return self._quorum_reached

    def capacity(self) -> int:
        if not self._quorum():
            return 0
        return sum(worker.slots + self.prefetch
                   for worker in self._ready_workers()
                   if not worker.draining)

    def free_slots(self) -> int:
        if not self._quorum():
            return 0
        return sum(worker.free(self.prefetch)
                   for worker in self._ready_workers())

    def in_flight(self) -> int:
        return sum(len(worker.assigned) for worker in self._workers) \
            + len(self._requeue)

    def _check_open(self) -> None:
        if self._closed:
            from ..core.language import AutoSVAError

            raise AutoSVAError(
                "this TcpTransport was already consumed by a campaign "
                "run (the scheduler shuts the fleet down when a run "
                "completes); create a new transport — and new worker "
                "agents — per run")

    def dispatch(self, index: int, job,
                 excluded: frozenset = frozenset()) -> bool:
        self._check_open()
        if not self._quorum():
            return False
        ready = self._ready_workers()
        cost = float(self.cost_of(job)) if self.cost_of is not None else 1.0
        # Exclusion marks workers that *died* holding the job.  An agent
        # that resumed its session is the same living process back on a
        # new connection — the "death" was the wire, not the task — so
        # it is eligible again; honoring a stale exclusion could starve
        # a one-agent fleet forever.
        candidates = [worker for worker in ready
                      if worker.free(self.prefetch) > 0
                      and (worker.worker_id not in excluded
                           or worker.reconnects > 0)]
        while candidates:
            target = min(candidates,
                         key=lambda w: ((w.load + cost) / w.slots, w.seq))
            try:
                self._send(target, {
                    "type": "task", "task": encode_unit(job),
                    "timeout_s": self.timeout_s,
                    "memory_limit_mb": self.memory_limit_mb,
                })
            except OSError:
                self._kill(target, "send failed")
                candidates.remove(target)
                continue
            target.assigned[index] = job
            target.costs[index] = cost
            target.load += cost
            return True
        return False

    def reclaim(self) -> None:
        """Ask busy workers to give back not-yet-started backlog."""
        for worker in self._ready_workers():
            if worker.steal_pending or worker.draining:
                continue
            unstarted = sum(
                1 for job in worker.assigned.values()
                if job.job_id not in worker.started)
            if unstarted <= 0:
                continue
            try:
                self._send(worker, {"type": "steal", "max": unstarted})
                worker.steal_pending = True
            except OSError:
                self._kill(worker, "send failed")

    def step(self) -> Tuple[List[Tuple[int, object, JobResult]],
                            List[Tuple[int, object, Optional[str]]]]:
        self._check_open()
        now = time.monotonic()
        self._maintain(now)
        waitables = [self._listener] + \
            [worker.sock for worker in self._workers]
        ready = mp_connection.wait(waitables,
                                   timeout=self._wait_timeout(now))
        if self._listener in ready:
            self._accept()
        now = time.monotonic()
        for worker in list(self._workers):
            if worker.sock not in ready:
                continue
            try:
                data = worker.sock.recv(65536)
            except OSError as exc:
                self._kill(worker, f"recv failed: {exc}")
                continue
            if not data:
                # A draining agent's EOF with nothing left assigned is
                # the *expected* end of a graceful shutdown; EOF with
                # work still running means it died mid-drain after all,
                # so the usual death requeue applies.
                if worker.draining and not worker.assigned:
                    _LOG.info("worker departed gracefully",
                              worker=worker.worker_id)
                    self._drop(worker, "graceful shutdown")
                else:
                    self._kill(worker, "connection closed")
                continue
            worker.last_seen = now
            try:
                for message in worker.decoder.feed(data):
                    self._handle(worker, message)
            except ProtocolError as exc:
                self._kill(worker, f"protocol error: {exc}")
        self._check_starvation()
        finished, requeued = self._finished, self._requeue
        self._finished, self._requeue = [], []
        return finished, requeued

    def worker_stats(self) -> List[Dict[str, object]]:
        """Per-agent utilization/steal numbers, departed agents included."""
        now = time.monotonic()
        return [worker.stats(now)
                for worker in self._departed + self._workers
                if worker.slots or worker.tasks_done]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.sock.sendall(encode_frame(
                    {"type": "shutdown", "reason": "campaign complete"}))
            except OSError:
                pass
            try:
                worker.sock.close()
            except OSError:
                pass
            worker.departed = worker.departed or "shutdown"
            worker.departed_at = time.monotonic()
            self._departed.append(worker)
        self._workers = []
        try:
            self._listener.close()
        except OSError:
            pass
        for process in self._spawned:
            if process.poll() is None:
                process.terminate()
        for process in self._spawned:
            try:
                process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()

    # -- conveniences ------------------------------------------------------
    def spawn_local(self, count: int, slots: int = 1,
                    preload: Sequence[str] = (),
                    reconnect: bool = False) -> None:
        """Spawn loopback worker agents owned (and closed) by this
        transport — the quickstart/CI path."""
        self._spawned.extend(spawn_local_workers(
            self.address, count, slots=slots, preload=preload,
            reconnect=reconnect))

    def wait_for_workers(self, count: int,
                         timeout_s: float = 30.0) -> None:
        """Block until ``count`` agents completed their handshake."""
        deadline = time.monotonic() + timeout_s
        while len(self._ready_workers()) < count:
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"only {len(self._ready_workers())}/{count} worker(s) "
                    f"connected within {timeout_s:.0f}s")
            self.step()

    # -- internals ---------------------------------------------------------
    def _send(self, worker: _RemoteWorker,
              message: Dict[str, object]) -> None:
        transmit(worker.sock, message)

    def _wait_timeout(self, now: float) -> float:
        next_ping = min(
            (worker.last_ping + self.heartbeat_s
             for worker in self._ready_workers()), default=now + _IDLE_WAIT_S)
        return min(max(0.0, next_ping - now), _IDLE_WAIT_S)

    def _accept(self) -> None:
        while True:
            try:
                self._listener.setblocking(False)
                sock, _addr = self._listener.accept()
            except (BlockingIOError, OSError):
                return
            finally:
                self._listener.setblocking(True)
            sock.setblocking(True)
            now = time.monotonic()
            self._workers.append(_RemoteWorker(
                sock=sock, seq=self._next_seq, connected_at=now,
                last_seen=now, last_ping=now))
            self._next_seq += 1

    def _maintain(self, now: float) -> None:
        for worker in list(self._workers):
            if worker.ready and FAULTS.enabled \
                    and FAULTS.maybe_fire("coordinator.heartbeat_stall"):
                # Chaos: falsely declare a live agent dead, exactly as a
                # stalled heartbeat would — its tasks requeue and the
                # agent (if --reconnect) resumes its session.
                self._kill(worker,
                           "heartbeat timeout (injected stall)")
                continue
            window = self.liveness_timeout_s
            if worker.ready and now - worker.last_seen > window \
                    and now > worker.grace_until:
                self._kill(worker,
                           f"heartbeat timeout ({window:.0f}s silent)")
                continue
            if not worker.ready and now - worker.last_seen > window:
                # A connection that never says hello is not a worker.
                self._drop(worker)
                continue
            if worker.ready and now - worker.last_ping >= self.heartbeat_s:
                worker.ping_seq += 1
                try:
                    self._send(worker, {"type": "heartbeat",
                                        "seq": worker.ping_seq})
                    worker.last_ping = now
                    worker.ping_sent[worker.ping_seq] = now
                    # Unanswered pings (a worker mid-compile) must not
                    # accumulate forever; the liveness timeout bounds how
                    # many can matter.
                    if len(worker.ping_sent) > 128:
                        oldest = min(worker.ping_sent)
                        del worker.ping_sent[oldest]
                except OSError:
                    self._kill(worker, "send failed")

    def _handle(self, worker: _RemoteWorker,
                message: Dict[str, object]) -> None:
        validate_message(message)
        kind = message["type"]
        if kind == "hello":
            try:
                negotiate_version(message.get("version"))
            except ProtocolError as exc:
                try:
                    self._send(worker, {"type": "shutdown",
                                        "reason": str(exc)})
                except OSError:
                    pass
                self._drop(worker)
                return
            worker.worker_id = (f"{message.get('host', '?')}:"
                                f"{message.get('pid', '?')}")
            worker.slots = max(1, int(message.get("slots", 1)))
            worker.label = message.get("label")
            worker.ready = True
            _LOG.debug("worker joined", worker=worker.worker_id,
                       slots=worker.slots, label=worker.label)
            # "session" is a minor optional field: a --reconnect agent
            # carries a stable id across connections so a return is
            # recognized instead of double-counted as a fresh worker.
            session = message.get("session")
            if isinstance(session, str) and session:
                worker.session = session
                self._resume_session(worker)
            # "trace" is a minor ack field: a tracing coordinator asks
            # the agent to record spans too; old agents ignore it.
            try:
                self._send(worker, {"type": "hello",
                                    "version": PROTOCOL_VERSION,
                                    "role": "coordinator",
                                    "trace": TRACER.enabled})
            except OSError:
                self._kill(worker, "send failed")
        elif kind == "result":
            task_id = message["task_id"]
            index = next((i for i, job in worker.assigned.items()
                          if job.job_id == task_id), None)
            if index is None:
                return     # stale result for a task already reclaimed
            job = worker.assigned.pop(index)
            worker.load -= worker.costs.pop(index, 0.0)
            worker.started.discard(task_id)
            wall = float(message.get("wall_time_s", 0.0))
            worker.tasks_done += 1
            worker.busy_s += wall
            obs = message.get("obs")
            if obs:
                absorb_obs(obs, ts_offset=_obs_clock_offset(obs))
            self._finished.append((index, job, JobResult(
                job_id=task_id, status=message["status"],
                payload=message.get("payload"),
                error=message.get("error"),
                wall_time_s=wall, worker=worker.worker_id)))
        elif kind == "event":
            event_kind = message.get("kind")
            if event_kind == "task_started":
                worker.started.add(message.get("task_id"))
            elif event_kind == "compile_started":
                # The agent is about to block its event loop in a
                # frontend compile and cannot echo heartbeats: suspend
                # liveness kills until compile_done (or the grace cap).
                worker.grace_until = time.monotonic() + self.compile_grace_s
            elif event_kind == "compile_done":
                worker.compiles += 1
                worker.grace_until = 0.0
        elif kind == "heartbeat":
            # last_seen is already refreshed; the echo additionally
            # closes the round trip for the ping it answers.
            sent = worker.ping_sent.pop(message.get("seq"), None)
            if sent is not None:
                rtt = time.monotonic() - sent
                worker.record_rtt(rtt)
                METRICS.histogram(
                    "fabric.heartbeat_rtt_s",
                    bounds=(0.001, 0.005, 0.02, 0.1, 0.5)).observe(rtt)
        elif kind == "steal_grant":
            worker.steal_pending = False
            granted = message.get("task_ids") or []
            for task_id in granted:
                index = next((i for i, job in worker.assigned.items()
                              if job.job_id == task_id), None)
                if index is None:
                    continue           # finished while the grant flew
                job = worker.assigned.pop(index)
                worker.load -= worker.costs.pop(index, 0.0)
                worker.steals_granted += 1
                self._requeue.append((index, job, None))
        elif kind == "shutdown":
            # Worker-initiated graceful drain (SIGTERM/SIGINT on the
            # agent): its ``task_ids`` are the unstarted tasks it is
            # handing back — requeue them with no exclusion (this agent
            # is not dead, just leaving) and stop dispatching here.
            # Tasks it already started will still report results.
            worker.draining = True
            for task_id in message.get("task_ids") or []:
                index = next((i for i, job in worker.assigned.items()
                              if job.job_id == task_id), None)
                if index is None:
                    continue           # finished while the frame flew
                job = worker.assigned.pop(index)
                worker.load -= worker.costs.pop(index, 0.0)
                self._requeue.append((index, job, None))
        else:
            raise ProtocolError(
                f"worker sent a coordinator-only message: {kind}")

    def _resume_session(self, worker: _RemoteWorker) -> None:
        """Merge a returning agent's history into its new connection.

        A live entry with the same session is a zombie: the process
        behind it reconnected, so its old socket will never speak again
        — kill it now (requeueing anything it still held, exactly the
        existing death path, just sooner than the liveness timeout).  A
        *departed* entry with the session is this agent's previous life:
        fold its lifetime stats into the new connection and remove it,
        so the fleet report shows one agent with ``reconnects`` N
        instead of N corpses — the death is not double-counted.
        """
        resumed = False
        for other in list(self._workers):
            if other is not worker and other.session == worker.session:
                self._kill(other, "superseded by reconnect")
                resumed = True
        for departed in list(self._departed):
            if departed.session != worker.session:
                continue
            resumed = True
            worker.reconnects += departed.reconnects + 1
            worker.tasks_done += departed.tasks_done
            worker.busy_s += departed.busy_s
            worker.compiles += departed.compiles
            worker.steals_granted += departed.steals_granted
            worker.connected_at = min(worker.connected_at,
                                      departed.connected_at)
            worker.rtt_samples += departed.rtt_samples
            worker.rtt_total += departed.rtt_total
            if departed.rtt_min is not None and \
                    (worker.rtt_min is None
                     or departed.rtt_min < worker.rtt_min):
                worker.rtt_min = departed.rtt_min
            if departed.rtt_max is not None and \
                    (worker.rtt_max is None
                     or departed.rtt_max > worker.rtt_max):
                worker.rtt_max = departed.rtt_max
            self._departed.remove(departed)
        if resumed:
            METRICS.counter("fabric.reconnects").inc()
            _LOG.info("worker session resumed", worker=worker.worker_id,
                      session=(worker.session or "")[:8],
                      reconnects=worker.reconnects)

    def _kill(self, worker: _RemoteWorker, reason: str) -> None:
        """A worker died: requeue its in-flight work, excluded from it."""
        _LOG.warn("worker death", worker=worker.worker_id,
                  reason=reason, requeued=len(worker.assigned))
        for index, job in worker.assigned.items():
            self._requeue.append((index, job, worker.worker_id))
        worker.assigned = {}
        worker.costs = {}
        worker.load = 0.0
        self._drop(worker, reason)

    def _drop(self, worker: _RemoteWorker,
              reason: str = "never completed handshake") -> None:
        try:
            worker.sock.close()
        except OSError:
            pass
        if worker in self._workers:
            self._workers.remove(worker)
        worker.departed = reason
        worker.departed_at = time.monotonic()
        self._departed.append(worker)

    def _check_starvation(self) -> None:
        """Fail loudly when the pool cannot dispatch for too long.

        "Starved" means dispatch is gated entirely: the startup quorum
        was never met, or every ready worker is gone (fleet died
        mid-campaign).  The timer restarts whenever dispatch becomes
        possible again, so a healthy pool is never at risk — and a
        campaign whose whole fleet is killed does not hang silently past
        ``worker_timeout_s``.
        """
        ready = len(self._ready_workers())
        starved = (not self._quorum_reached and ready < self.min_workers) \
            or ready == 0
        if not starved:
            self._starved_since = None
            return
        if self._starved_since is None:
            self._starved_since = time.monotonic()
        if self.worker_timeout_s is None:
            return
        if time.monotonic() - self._starved_since > self.worker_timeout_s:
            from ..core.language import AutoSVAError

            host, port = self.address
            detail = (f"no worker connected to {host}:{port}" if ready == 0
                      else f"only {ready} of the {self.min_workers} "
                           f"worker(s) required joined {host}:{port}")
            raise AutoSVAError(
                f"{detail} within {self.worker_timeout_s:.0f}s — start "
                f"agents with: autosva worker --connect {host}:{port}")
