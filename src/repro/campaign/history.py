"""Campaign history: append-only run log + regression detection.

Every campaign run can append one JSONL line summarizing its outcome —
per-design proof rates, CEX properties with depths, error counts — and
compare itself against the previous line.  The comparison catches the
drifts that matter for a verification campaign:

* **proof-rate regressions** — a design that proved 100% last run and no
  longer does (an engine or RTL change broke a proof);
* **lost CEXs** — a bug the campaign used to find is no longer found
  (a bounds change masked it);
* **CEX-depth drift** — a counterexample got deeper (the bug moved) or
  shallower;
* **new failures** — jobs that now error/time out.

The file is plain JSONL: one self-contained object per run, safe to
truncate, rotate or diff.  ``autosva campaign --history FILE`` wires this
in; the regression section prints after the Table III summary.

Besides run summaries the log also carries ``timings`` records — measured
per-task wall times keyed by property-kind counts — which
:meth:`~repro.campaign.costmodel.CostModel.calibrated` folds back into
the cost model, so cost-scheduled campaigns converge on the machine's
real liveness/assert/cover cost ratios.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional

from .report import CampaignReport

__all__ = ["CampaignHistory", "atomic_append"]

_FORMAT_VERSION = 1


def atomic_append(path: Path, data: bytes, fsync: bool = False) -> None:
    """Append ``data`` to ``path`` as one atomic write.

    ``O_APPEND`` + a single ``os.write`` lands the bytes as one
    contiguous range (POSIX), so concurrent appenders can interleave
    records but never tear one; a buffered ``open("a")`` could flush a
    record in pieces.  ``fsync=True`` forces the record to stable
    storage before returning — the durability primitive the service
    journal (:mod:`repro.service.journal`) is built on.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd = os.open(str(path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, data)
        if fsync:
            os.fsync(fd)
    finally:
        os.close(fd)


def _row_record(row) -> Dict[str, object]:
    return {
        "outcome": row.outcome,
        "fixed_proof_rate": row.fixed_proof_rate,
        "buggy_proof_rate": row.buggy_proof_rate,
        "cex": dict(zip(row.cex_properties, row.cex_depths)),
        "errors": len(row.errors),
        "mismatches": len(row.mismatches),
    }


def summarize_run(report: CampaignReport,
                  label: Optional[str] = None) -> Dict[str, object]:
    """The JSONL record for one campaign run."""
    totals = report.totals()
    return {
        "version": _FORMAT_VERSION,
        "timestamp": time.time(),
        "label": label,
        "totals": totals,
        "designs": {row.case_id: _row_record(row) for row in report.rows()},
    }


class CampaignHistory:
    """An append-only JSONL log of campaign runs.

    Appends are **atomic at the line level**: each record is written as
    a single ``os.write`` on an ``O_APPEND`` descriptor, which POSIX
    guarantees lands as one contiguous byte range — concurrent writers
    (the campaign service settles many campaigns against one history
    file) can interleave *lines* but never tear one.  ``fsync=True``
    additionally forces each record to stable storage before ``append``
    returns, for histories that feed billing or audit rather than just
    regression comparison.
    """

    def __init__(self, path, fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = fsync

    # -- persistence -------------------------------------------------------
    def entries(self) -> List[Dict[str, object]]:
        """All parseable history records, oldest first."""
        try:
            lines = self.path.read_text().splitlines()
        except OSError:
            return []
        out = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                out.append(json.loads(line))
            except ValueError:
                continue  # a torn/corrupt line never poisons the history
        return out

    def last(self) -> Optional[Dict[str, object]]:
        """The previous *run summary* (timing records don't count)."""
        runs = [entry for entry in self.entries()
                if entry.get("type") != "timings"]
        return runs[-1] if runs else None

    def _write(self, record: Dict[str, object]) -> Dict[str, object]:
        data = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        atomic_append(self.path, data, fsync=self.fsync)
        return record

    def append(self, report: CampaignReport,
               label: Optional[str] = None) -> Dict[str, object]:
        """Append this run's summary; returns the record written."""
        return self._write(summarize_run(report, label=label))

    # -- cost-model timing samples ----------------------------------------
    def append_timings(self, samples: List[Dict[str, object]],
                       label: Optional[str] = None
                       ) -> Optional[Dict[str, object]]:
        """Append measured per-task wall times for cost-model calibration.

        Each sample is ``{"kinds": {kind: count}, "wall_time_s": s,
        "worker": "host:pid"}`` — one per executed (non-cached) property
        task.  ``worker`` records *where* the task ran, so calibration
        over a heterogeneous fabric (a laptop coordinator plus big iron
        agents) can be filtered per host instead of mixing machines with
        different cost ratios; samples recorded before the field existed
        simply lack it, and :meth:`~repro.campaign.costmodel.CostModel.calibrated`
        ignores fields it does not know — both directions stay
        compatible.  No record is written when there are no samples (an
        all-cached rerun teaches nothing).
        """
        if not samples:
            return None
        return self._write({
            "version": _FORMAT_VERSION,
            "type": "timings",
            "timestamp": time.time(),
            "label": label,
            "samples": samples,
        })

    def timing_samples(self, limit_runs: int = 5,
                       hosts: Optional[List[str]] = None
                       ) -> List[Dict[str, object]]:
        """Samples from the most recent ``limit_runs`` timing records,
        newest last — the input :meth:`CostModel.calibrated` expects.

        ``hosts`` restricts the result to samples whose ``worker`` field
        (``host:pid``) names one of the given hosts — the heterogeneous-
        fabric filter.  Samples without worker identity (pre-field
        records, cache replays) are excluded by any host filter, since
        their machine is unknown.
        """
        records = [entry for entry in self.entries()
                   if entry.get("type") == "timings"]
        out: List[Dict[str, object]] = []
        for record in records[-limit_runs:]:
            samples = record.get("samples")
            if isinstance(samples, list):
                out.extend(s for s in samples if isinstance(s, dict))
        if hosts is not None:
            wanted = set(hosts)
            out = [sample for sample in out
                   if isinstance(sample.get("worker"), str)
                   and sample["worker"].rsplit(":", 1)[0] in wanted]
        return out

    # -- regression detection ----------------------------------------------
    def regressions(self, report: CampaignReport,
                    baseline: Optional[Dict[str, object]] = None
                    ) -> List[str]:
        """Human-readable regressions of ``report`` vs the previous run.

        Returns an empty list when there is no baseline yet or nothing
        drifted.  Improvements (higher proof rate, newly found CEXs) are
        deliberately not flagged — the list is an alarm, not a changelog.
        """
        baseline = baseline if baseline is not None else self.last()
        if not baseline:
            return []
        previous: Dict[str, Dict] = baseline.get("designs", {})
        findings: List[str] = []
        for row in report.rows():
            before = previous.get(row.case_id)
            if before is None:
                continue
            for variant, attr in (("fixed", "fixed_proof_rate"),
                                  ("buggy", "buggy_proof_rate")):
                old = before.get(attr)
                new = getattr(row, attr)
                if old is not None and new is not None and new < old:
                    findings.append(
                        f"{row.case_id}: {variant} proof rate regressed "
                        f"{old:.0%} -> {new:.0%}")
            old_cex: Dict[str, int] = before.get("cex", {})
            new_cex = dict(zip(row.cex_properties, row.cex_depths))
            for name, old_depth in old_cex.items():
                if name not in new_cex:
                    findings.append(
                        f"{row.case_id}: CEX on '{name}' no longer found "
                        f"(was depth {old_depth})")
                elif new_cex[name] != old_depth:
                    findings.append(
                        f"{row.case_id}: CEX depth on '{name}' drifted "
                        f"{old_depth} -> {new_cex[name]}")
            if row.errors and not before.get("errors"):
                findings.append(
                    f"{row.case_id}: {len(row.errors)} job(s) now failing "
                    f"(was clean)")
        return findings
