"""Verification campaigns: the paper's Table III evaluation, at scale.

The per-property engine (:mod:`repro.formal.engine`) and the FT generator
(:mod:`repro.core.flow`) verify *one* design at a time.  This package is
the layer that runs *many* — every corpus design × fixed/buggy variant ×
engine configuration — the way the paper's evaluation campaign ran
AutoSVA across the Ariane and OpenPiton modules.

API tour
--------

* :func:`~repro.campaign.jobs.expand_jobs` unfolds the corpus registry
  (:data:`repro.designs.CORPUS`) into :class:`~repro.campaign.jobs.CampaignJob`
  units — one per design × variant (× config when sweeping)::

      from repro.campaign import expand_jobs, run_campaign, CampaignReport
      jobs = expand_jobs(case_ids=["A1", "A2", "O1"])

* :func:`~repro.campaign.scheduler.run_campaign` executes them on a pool
  of worker processes with per-job wall-clock/memory bounds.  Results are
  returned in job order no matter how many workers ran, and a failing or
  hanging job degrades to a per-job ``error``/``timeout`` result instead
  of killing the campaign::

      results = run_campaign(jobs, workers=4, timeout_s=120)

* :class:`~repro.campaign.cache.ArtifactCache` makes reruns incremental:
  job results are cached under a content hash of the RTL sources (the
  AutoSVA annotations live in those sources), the DUT module name and the
  engine configuration, so only edited designs re-verify::

      cache = ArtifactCache(".repro-cache")
      results = run_campaign(jobs, workers=4, cache=cache)

* :class:`~repro.campaign.report.CampaignReport` aggregates results into
  the Table-III-style matrix (per-design outcome text, proof rates, CEX
  properties and depths, runtimes) with ``summary()`` /
  ``to_markdown()`` / ``to_json()`` exports, plus a per-config comparison
  section under engine-config sweeps::

      report = CampaignReport(jobs, results, workers=4)
      print(report.summary())

* :func:`~repro.campaign.sharding.run_property_campaign` re-runs the same
  job list at **property granularity** as a streaming pipeline on
  :mod:`repro.api`: each design is compiled once (parent-side, shared
  compile cache) *as the scheduler pulls its shard plan* — so design B's
  frontend overlaps design A's checking — and its property set is
  sharded across the pool as :class:`~repro.api.task.PropertyTask`
  groups, with results merged back into verdict-identical per-job
  payloads.  Under ``schedule="cost"`` (the default) the
  :class:`~repro.campaign.costmodel.CostModel` prices every property
  (liveness ≫ assert ≫ cover, scaled by COI size and engine bounds),
  groups are LPT-packed into balanced bins issued costliest-first, and
  the scheduler *work-steals* (re-splits pending groups) when workers
  would idle at the tail.  This removes the slowest-design wall-clock
  floor::

      results = run_property_campaign(jobs, workers=4, group_size=1)

* :class:`~repro.campaign.history.CampaignHistory` appends run summaries
  to a JSONL file and reports regressions (proof-rate drops, lost CEXs,
  CEX-depth drift, new failures) against the previous run.

* **Transports** decide *where* jobs execute: the default
  :class:`~repro.campaign.scheduler.LocalTransport` forks worker
  processes on this host; :class:`repro.dist.TcpTransport` dispatches
  the same jobs to remote ``autosva worker`` agents over TCP
  (``autosva campaign --transport tcp``), verdict-identical by CI-gated
  contract — see :mod:`repro.dist` and ``docs/distributed.md``::

      from repro.dist import TcpTransport
      transport = TcpTransport(min_workers=4)   # agents attach to
      print(transport.address)                  # this host:port
      results = run_property_campaign(jobs, transport=transport)

Corpus layout
-------------

The workload lives under ``repro/designs/verilog/``: ``ariane/`` holds
``ptw.sv``, ``tlb.sv``, ``mmu_fixed/buggy.sv``, ``lsu_fixed/buggy.sv``,
``icache_fixed/buggy.sv`` and ``mmu_shared{,_fair}.sv``; ``openpiton/``
holds ``noc_buffer_fixed/buggy.sv``, ``l15.sv`` and ``mem_engine.sv``.
``repro.designs.validate()`` health-checks the registry against the files
on disk before a campaign schedules anything.

CLI
---

The ``autosva`` CLI grows a ``campaign`` subcommand wired to this
package::

    autosva campaign                         # full corpus, Table III out
    autosva campaign --cases A1,A2 --workers 2
    autosva campaign --workers 4 --cache-dir .repro-cache --json out.json
    autosva campaign --granularity property --workers 4 --group-size 2
    autosva campaign --sweep proof_engine=pdr,kind
    autosva campaign --history runs.jsonl

``examples/table3_outcomes.py`` is the scripted equivalent.
"""

from .cache import ArtifactCache, CacheEntry
from .costmodel import CostModel, pack_lpt
from .history import CampaignHistory
from .jobs import (CampaignJob, default_engine_config, execute_job,
                   expand_jobs, summarize_report)
from .report import CampaignReport, DesignRow, verdict_contract
from .scheduler import (JobResult, LocalTransport, Scheduler, SourceNotice,
                        iter_campaign, resolve_worker_count, run_campaign)
from .sharding import (ShardPlan, merge_shard_results, run_property_campaign,
                       shard_jobs, stream_tasks)

__all__ = [
    "ArtifactCache", "CacheEntry",
    "CampaignHistory",
    "CampaignJob", "default_engine_config", "execute_job", "expand_jobs",
    "summarize_report",
    "CampaignReport", "DesignRow", "verdict_contract",
    "CostModel", "pack_lpt",
    "JobResult", "LocalTransport", "Scheduler", "SourceNotice",
    "iter_campaign", "resolve_worker_count", "run_campaign",
    "ShardPlan", "merge_shard_results", "run_property_campaign",
    "shard_jobs", "stream_tasks",
]
