"""Campaign jobs: one job = design × variant × engine configuration.

A :class:`CampaignJob` is a fully self-contained, picklable description of
one verification run — which corpus RTL to load, which module is the DUT,
and how to bound the engine.  :func:`expand_jobs` unfolds the corpus
registry (or any subset of it) into the job list a scheduler executes,
and :func:`execute_job` is the worker-side entry point that turns one job
into a plain-data result payload.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..designs import CORPUS, DesignCase, case_by_id, load
from ..formal.engine import CheckReport, EngineConfig

__all__ = ["CampaignJob", "expand_jobs", "execute_job", "summarize_report"]


@dataclass(frozen=True)
class CampaignJob:
    """One unit of campaign work.

    Everything is stored by value (file names, config fields) so a job can
    cross a process boundary; workers re-load sources from the corpus on
    their side.  ``job_id`` is unique within a campaign and doubles as the
    stable sort key for deterministic result ordering.
    """

    job_id: str                      # e.g. "A3.buggy"
    case_id: str
    case_name: str
    dut_module: str
    variant: str                     # "fixed" | "buggy"
    dut_file: str
    extra_files: Tuple[str, ...]
    engine_config: EngineConfig
    expect_proof: Optional[bool] = None
    expect_cex: Optional[str] = None
    #: Position in the sweep's config list (None outside a sweep) — what
    #: the report's per-config comparison groups on.
    config_index: Optional[int] = None

    def sources(self) -> List[str]:
        """Load the job's RTL sources (DUT first) from the corpus."""
        return [load(self.dut_file)] + [load(f) for f in self.extra_files]

    def cache_chunks(self):
        """(tag, text) pairs that determine this job's outcome — the
        artifact-cache key material (engine config is appended by the
        cache itself)."""
        yield "module", self.dut_module
        for source in self.sources():
            yield "source", source


def default_engine_config() -> EngineConfig:
    """The bounds the corpus tests/benchmarks run with."""
    return EngineConfig(max_bound=8, max_frames=30)


def expand_jobs(cases: Optional[Sequence[DesignCase]] = None,
                case_ids: Optional[Iterable[str]] = None,
                variants: Sequence[str] = ("fixed", "buggy"),
                config: Optional[EngineConfig] = None,
                configs: Optional[Sequence[EngineConfig]] = None
                ) -> List[CampaignJob]:
    """Unfold corpus cases into the campaign's job list.

    ``cases`` (or ``case_ids``) selects the designs — the whole registry by
    default.  ``variants`` selects which of fixed/buggy to run; a variant a
    case does not have is skipped silently (only A3/A4/A5/O1/E10 carry a
    buggy file).  ``configs`` sweeps several engine configurations per
    design (the ablation axis); ``config`` is the single-config shorthand.
    """
    if cases is None:
        cases = ([case_by_id(cid) for cid in case_ids]
                 if case_ids is not None else list(CORPUS))
    if configs is None:
        configs = [config or default_engine_config()]
    sweep = len(configs) > 1

    jobs: List[CampaignJob] = []
    for case in cases:
        for variant in variants:
            if variant == "fixed":
                dut_file = case.dut_file
                expect_proof = case.expect_fixed_proof
                expect_cex = None
            elif variant == "buggy":
                if not case.buggy_file:
                    continue
                dut_file = case.buggy_file
                expect_proof = False
                expect_cex = case.expect_buggy_cex
            else:
                raise ValueError(f"unknown variant {variant!r}")
            for idx, engine_config in enumerate(configs):
                job_id = f"{case.case_id}.{variant}"
                if sweep:
                    job_id += f".cfg{idx}"
                jobs.append(CampaignJob(
                    job_id=job_id, case_id=case.case_id,
                    case_name=case.name, dut_module=case.dut_module,
                    variant=variant, dut_file=dut_file,
                    extra_files=tuple(case.extra_files),
                    engine_config=replace(engine_config),
                    expect_proof=expect_proof, expect_cex=expect_cex,
                    config_index=idx if sweep else None))
    return jobs


def summarize_report(report: CheckReport) -> Dict[str, object]:
    """Flatten a :class:`CheckReport` into a JSON-able payload.

    Per-property wall times are deliberately kept out of the
    ``properties`` list: everything in it is deterministic, which is what
    lets the scheduler promise identical results for any worker count and
    the cache replay runs byte-for-byte.
    """
    properties = [
        {"name": r.name, "kind": r.kind, "status": r.status,
         "depth": r.depth}
        for r in report.results
    ]
    return {
        "design": report.design,
        "proof_rate": report.proof_rate,
        "num_properties": report.num_properties,
        "num_proven": report.num_proven,
        "num_cex": report.num_cex,
        "cex": [{"name": r.name, "depth": r.depth}
                for r in report.cex_results],
        "properties": properties,
        # Measurements, not verdicts: the equivalence contract
        # (verdict_contract) strips these alongside engine_time_s.
        "solve_time_s": report.solve_time_s,
        "solver": dict(report.solver),
    }


def execute_job(job: CampaignJob) -> Dict[str, object]:
    """Worker-side execution: generate the FT, run the engine, summarize.

    Raises on any failure (missing file, annotation error, engine error);
    the scheduler converts exceptions into per-job ``error`` results so
    one broken design never takes the campaign down.
    """
    from ..core import generate_ft, run_fv

    begin = time.perf_counter()
    sources = job.sources()
    ft = generate_ft(sources[0], module_name=job.dut_module)
    report = run_fv(ft, sources, job.engine_config)
    payload = summarize_report(report)
    payload["annotation_loc"] = ft.annotation_loc
    payload["property_count"] = ft.property_count
    payload["engine_time_s"] = time.perf_counter() - begin
    return payload
