"""Content-addressed artifact cache for campaign runs.

A cache key is the SHA-256 of everything that determines a job's outcome:
the DUT RTL text (annotations are comments *in* that text, so they are
hashed with it), every extra source, the DUT module name, the engine
configuration, and a schema-version salt.  Editing one design therefore
invalidates exactly that design's entries; a rerun over an unchanged
corpus is served entirely from disk and touches no solver.

Entries are small JSON files under the cache directory — transparent,
diff-able, and safe to delete at any time.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

from ..testing.faults import FAULTS
from .jobs import CampaignJob

__all__ = ["ArtifactCache", "CacheEntry"]

#: Bump when the result payload schema or engine semantics change: old
#: entries then miss instead of replaying stale results.  (2: entries
#: became ``{"payload": ..., "wall_time_s": ...}`` envelopes so cached
#: replays can report the original check time; envelopes now also carry
#: an explicit ``schema`` field so the load path can tell a legacy entry
#: from a future one instead of guessing from shape.)
_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class CacheEntry:
    """One stored result: the payload plus when-it-ran metadata."""

    payload: Dict[str, object]
    #: Wall time of the run that produced the payload (None for entries
    #: without timing, e.g. shard plans).
    wall_time_s: Optional[float] = None


class ArtifactCache:
    """A directory of content-addressed job results."""

    def __init__(self, cache_dir, fsync: bool = False) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        #: Force each entry to stable storage before the rename makes it
        #: visible — a crash can then never leave a *visible* torn entry
        #: (torn files are already only a miss, so this is for caches
        #: whose entries feed audit trails, not correctness).
        self.fsync = fsync

    # -- keying ------------------------------------------------------------
    def key(self, job) -> str:
        """Content hash of all outcome-determining inputs of ``job``.

        Accepts any unit of work the scheduler runs — anything with
        ``cache_chunks()`` and an ``engine_config``: a whole-design
        :class:`CampaignJob` (module + corpus sources) or a per-property
        :class:`~repro.api.task.PropertyTask`, whose chunks include the
        property-group names so different shards of one design get
        distinct entries.
        """
        from ..api.compile import config_fingerprint, hash_chunks

        pairs = [("schema", str(_SCHEMA_VERSION))]
        pairs.extend(job.cache_chunks())
        pairs.append(("config", config_fingerprint(job.engine_config)))
        return hash_chunks(pairs)

    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    # -- lookup / store ----------------------------------------------------
    def _read(self, key: str) -> Optional[CacheEntry]:
        """The one read-and-validate path behind get() and contains().

        Schema handling is explicit, not shape-sniffed:

        * entries written by a **newer** build (``schema`` above ours)
          raise :class:`~repro.core.language.AutoSVAError` naming the
          versions — replaying a payload this build cannot interpret, or
          failing with a bare ``KeyError``, are both worse than stopping;
        * **schema-1** entries (the pre-envelope format: the raw payload
          dict itself, no ``schema``/``payload`` fields) migrate on read
          — the payload is served with no original-wall-time metadata,
          exactly what that format recorded;
        * torn/corrupt files stay a miss (the entry rewrites itself).
        """
        try:
            raw = json.loads(self._path(key).read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(raw, dict):
            return None
        schema = raw.get("schema")
        if schema is None:
            # Entries before the explicit field: envelopes are schema 2,
            # anything else is the schema-1 raw-payload format.
            schema = 2 if "payload" in raw else 1
        if not isinstance(schema, int) or schema > _SCHEMA_VERSION:
            from ..core.language import AutoSVAError

            raise AutoSVAError(
                f"cache entry {self._path(key)} was written with schema "
                f"{schema!r}; this build reads schema <= {_SCHEMA_VERSION}."
                f" Delete the entry (or the cache directory) or upgrade.")
        if schema < 2:
            return CacheEntry(payload=raw, wall_time_s=None)
        if "payload" not in raw:
            return None  # truncated envelope: treat as a miss
        wall = raw.get("wall_time_s")
        return CacheEntry(payload=raw["payload"],
                          wall_time_s=float(wall) if wall is not None
                          else None)

    def get_entry(self, key: str) -> Optional[CacheEntry]:
        """Payload plus stored metadata (original wall time)."""
        entry = self._read(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def get(self, key: str) -> Optional[Dict[str, object]]:
        entry = self.get_entry(key)
        return entry.payload if entry is not None else None

    def contains(self, key: str) -> bool:
        """Valid-entry peek that does not touch the hit/miss counters.

        Used by the shard planner to decide whether a restored job still
        needs a parent-side compile without distorting replay statistics.
        Shares :meth:`_read` with :meth:`get`, so an entry this says is
        present is one the replay can actually serve.
        """
        return self._read(key) is not None

    def put(self, key: str, payload: Dict[str, object],
            wall_time_s: Optional[float] = None) -> None:
        path = self._path(key)
        # Per-process tmp name: concurrent campaigns sharing a cache dir
        # must not race on the rename source.  Content-addressing makes the
        # replace itself safe — writers of the same key agree on content.
        tmp = self.cache_dir / f".{key}.{os.getpid()}.tmp"
        data = json.dumps(
            {"schema": _SCHEMA_VERSION, "payload": payload,
             "wall_time_s": wall_time_s},
            sort_keys=True)
        if FAULTS.enabled and FAULTS.maybe_fire("cache.torn_write"):
            # Chaos rehearsal of a crash mid-write that still got renamed
            # into place (or a pre-envelope torn file): readers must treat
            # the half-entry as a miss and the next writer repairs it.
            data = data[: max(1, len(data) // 2)]
        with tmp.open("w") as handle:
            handle.write(data)
            if self.fsync:
                handle.flush()
                os.fsync(handle.fileno())
        tmp.replace(path)

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "entries": sum(1 for _ in self.cache_dir.glob("*.json"))}
