"""Campaign reports: aggregate per-job results into a Table-III matrix.

A :class:`CampaignReport` pairs the job list with the scheduler's results
and derives, per design, the row the paper's Table III prints: outcome
text, proof rates for the fixed and buggy variants, the failing
properties with their CEX depths, and runtimes.  Exports to JSON (for
tooling and the benchmark harness) and markdown (for humans).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .jobs import CampaignJob
from .scheduler import JobResult

__all__ = ["CampaignReport", "DesignRow", "verdict_contract"]


def verdict_contract(results: Sequence[JobResult]) -> List[tuple]:
    """The ONE normalization behind every verdict-equivalence gate.

    Everything the campaign's equivalence contract covers — per-job id,
    status, error and the full deterministic payload — with measurements
    (``engine_time_s``, ``solve_time_s``, the ``solver`` counter deltas)
    stripped: wall time is the only thing a schedule, worker count or
    transport is *allowed* to change, and solver counters legitimately
    vary with property grouping and steal schedules.  The
    pipeline/dist smoke gates and the tier-1 corpus-equivalence tests
    all compare this view; keeping one implementation means they cannot
    silently disagree about what "bit-identical verdicts" includes.
    """
    view: List[tuple] = []
    for result in results:
        payload = dict(result.payload or {})
        payload.pop("engine_time_s", None)
        payload.pop("solve_time_s", None)
        payload.pop("solver", None)
        view.append((result.job_id, result.status, result.error, payload))
    return view


@dataclass
class DesignRow:
    """One design's aggregated campaign outcome (one Table III row)."""

    case_id: str
    name: str
    outcome: str
    fixed_proof_rate: Optional[float] = None
    buggy_proof_rate: Optional[float] = None
    cex_properties: List[str] = field(default_factory=list)
    cex_depths: List[int] = field(default_factory=list)
    time_s: float = 0.0
    #: Seconds the row's jobs spent inside SAT ``solve()`` calls — the
    #: solver share of the engine time (measurement, not verdict).
    solve_time_s: float = 0.0
    #: Wall time of the original (cache-writing) runs behind any cached
    #: replays in this row — the "what it would have cost" number.
    original_time_s: float = 0.0
    #: Work-stealing re-splits that hit this design's tasks.
    steals: int = 0
    errors: List[str] = field(default_factory=list)
    #: Registry expectations (DesignCase.expect_*) the run contradicted.
    mismatches: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "case_id": self.case_id, "name": self.name,
            "outcome": self.outcome,
            "fixed_proof_rate": self.fixed_proof_rate,
            "buggy_proof_rate": self.buggy_proof_rate,
            "cex_properties": self.cex_properties,
            "cex_depths": self.cex_depths,
            "time_s": self.time_s,
            "solve_time_s": self.solve_time_s,
            "original_time_s": self.original_time_s,
            "steals": self.steals,
            "errors": self.errors,
            "mismatches": self.mismatches,
        }


def _short(name: str) -> str:
    """Property label without the bind-path/directive noise."""
    return name.split("__")[-1]


def _rtt_text(rtt: Optional[Dict[str, object]]) -> str:
    """Render a worker's heartbeat RTT stats (min/mean/max ms)."""
    if not rtt:
        return "—"
    return (f"{rtt.get('min', 0):.1f}/{rtt.get('mean', 0):.1f}/"
            f"{rtt.get('max', 0):.1f}ms")


@dataclass
class CampaignReport:
    """Everything one campaign run produced."""

    jobs: List[CampaignJob]
    results: List[JobResult]
    workers: int = 1
    wall_time_s: float = 0.0
    cache_stats: Optional[Dict[str, int]] = None
    #: Scheduling policy of the run (property granularity: "inventory" or
    #: "cost"); None for design-granularity campaigns.
    schedule: Optional[str] = None
    #: Total work-stealing re-splits across the run.
    steals: int = 0
    #: Execution transport of the run ("local" forked pool, "tcp" remote
    #: fabric); None when the caller didn't say.
    transport: Optional[str] = None
    #: Per-worker-agent fabric stats (remote transports): worker id,
    #: slots, tasks run, busy seconds, utilization, steal grants,
    #: first-sight compiles, heartbeat RTT, departure reason.
    #: Empty/None locally.
    worker_stats: Optional[List[Dict[str, object]]] = None
    #: Parent-side frontend seconds (FT generation + compile), summed
    #: from the stream's ``compile_done`` notices; feeds the phase
    #: breakdown.
    frontend_time_s: float = 0.0

    def __post_init__(self) -> None:
        if len(self.jobs) != len(self.results):
            raise ValueError(
                f"job/result length mismatch: {len(self.jobs)} jobs, "
                f"{len(self.results)} results")

    # -- per-job access ----------------------------------------------------
    def result(self, job_id: str) -> JobResult:
        for result in self.results:
            if result.job_id == job_id:
                return result
        raise KeyError(f"no job {job_id!r} in this campaign")

    @property
    def num_ok(self) -> int:
        return sum(1 for r in self.results if r.ok)

    @property
    def num_failed(self) -> int:
        return len(self.results) - self.num_ok

    @property
    def num_cached(self) -> int:
        return sum(1 for r in self.results if r.from_cache)

    # -- the Table III matrix ----------------------------------------------
    def rows(self) -> List[DesignRow]:
        by_case: Dict[str, List[int]] = {}
        order: List[str] = []
        for index, job in enumerate(self.jobs):
            if job.case_id not in by_case:
                by_case[job.case_id] = []
                order.append(job.case_id)
            by_case[job.case_id].append(index)

        rows: List[DesignRow] = []
        for case_id in order:
            indices = by_case[case_id]
            row = DesignRow(case_id=case_id,
                            name=self.jobs[indices[0]].case_name,
                            outcome="")
            fixed_payload = buggy_payload = None
            for index in indices:
                job, result = self.jobs[index], self.results[index]
                row.time_s += result.wall_time_s
                if result.ok and result.payload:
                    row.solve_time_s += result.payload.get(
                        "solve_time_s", 0.0)
                row.steals += result.steals
                if result.from_cache and \
                        result.original_wall_time_s is not None:
                    row.original_time_s += result.original_wall_time_s
                if not result.ok:
                    row.errors.append(
                        f"{job.job_id}: {result.status}"
                        + (f" ({result.error.strip().splitlines()[-1]})"
                           if result.error else ""))
                    continue
                payload = result.payload
                # Under a config sweep the first config is the primary one
                # for the row's headline numbers; later configs still
                # contribute CEX labels and expectation checks below.
                if job.variant == "fixed":
                    if fixed_payload is None:
                        fixed_payload = payload
                        row.fixed_proof_rate = payload["proof_rate"]
                else:
                    if buggy_payload is None:
                        buggy_payload = payload
                        row.buggy_proof_rate = payload["proof_rate"]
                for cex in payload["cex"]:
                    label = f"{job.variant}:{_short(cex['name'])}"
                    if label not in row.cex_properties:
                        row.cex_properties.append(label)
                        row.cex_depths.append(cex["depth"])
                # Check the run against the registry's expectations.
                if job.expect_proof and payload["proof_rate"] != 1.0:
                    row.mismatches.append(
                        f"{job.job_id}: expected 100% proof, got "
                        f"{payload['proof_rate']:.0%}")
                if job.expect_cex and not any(
                        job.expect_cex in c["name"]
                        for c in payload["cex"]):
                    row.mismatches.append(
                        f"{job.job_id}: expected a CEX on "
                        f"'{job.expect_cex}', none found")
            row.outcome = self._outcome_text(row, fixed_payload,
                                             buggy_payload)
            rows.append(row)
        return rows

    @staticmethod
    def _outcome_text(row: DesignRow, fixed, buggy) -> str:
        if row.errors and fixed is None and buggy is None:
            return "campaign error"
        if buggy is not None:
            failing = sorted({_short(c["name"]) for c in buggy["cex"]})
            if not failing:
                # The buggy variant came back clean: never claim a bug the
                # engine did not find (shallow bounds do this).
                return "bug NOT reproduced (buggy variant clean at bound)"
            if fixed is not None and fixed["proof_rate"] == 1.0:
                return (f"Bug found ({', '.join(failing)}) and fixed "
                        f"-> 100% proof")
            return f"Hit known bug ({', '.join(failing)})"
        if fixed is not None:
            if fixed["proof_rate"] == 1.0:
                return "100% liveness/safety properties proof"
            partial = sorted({_short(c["name"]) for c in fixed["cex"]})
            return f"partial proof, CEXs: {', '.join(partial)}"
        return "no results"

    # -- sweep comparison --------------------------------------------------
    @property
    def swept_configs(self) -> List[int]:
        """Distinct sweep config indices present (empty outside a sweep)."""
        return sorted({job.config_index for job in self.jobs
                       if getattr(job, "config_index", None) is not None})

    def config_comparison(self) -> List[Dict[str, object]]:
        """Per-config aggregates for engine-config sweeps.

        One entry per sweep config, summarizing how that configuration did
        across every design it ran: mean proof rate over fixed-variant
        jobs, distinct CEXs found on buggy variants, failures, engine
        time.  This is the campaign-scale ablation view (which bounds are
        worth their runtime).
        """
        comparison: List[Dict[str, object]] = []
        for config_index in self.swept_configs:
            picked = [(job, result)
                      for job, result in zip(self.jobs, self.results)
                      if getattr(job, "config_index", None) == config_index]
            fixed_rates = [result.payload["proof_rate"]
                           for job, result in picked
                           if result.ok and job.variant == "fixed"]
            cex_names = {cex["name"]
                         for job, result in picked
                         if result.ok and job.variant == "buggy"
                         for cex in result.payload["cex"]}
            entry = {
                "config": config_index,
                "jobs": len(picked),
                "failed": sum(1 for _, r in picked if not r.ok),
                "fixed_proof_rate": (sum(fixed_rates) / len(fixed_rates)
                                     if fixed_rates else None),
                "buggy_cex_found": len(cex_names),
                "engine_time_s": sum(
                    r.payload.get("engine_time_s", 0.0)
                    for _, r in picked if r.ok and r.payload),
            }
            sample = next((job.engine_config for job, _ in picked), None)
            if sample is not None:
                entry["engine"] = sample.proof_engine
                entry["max_bound"] = sample.max_bound
                entry["max_frames"] = sample.max_frames
            comparison.append(entry)
        return comparison

    def _comparison_lines(self) -> List[str]:
        lines = []
        for entry in self.config_comparison():
            rate = ("—" if entry["fixed_proof_rate"] is None
                    else f"{entry['fixed_proof_rate']:.0%}")
            lines.append(
                f"cfg{entry['config']} ({entry.get('engine', '?')}, "
                f"bound={entry.get('max_bound', '?')}, "
                f"frames={entry.get('max_frames', '?')}): "
                f"fixed proof {rate}, {entry['buggy_cex_found']} buggy "
                f"CEX(s), {entry['failed']} failed, "
                f"{entry['engine_time_s']:.1f}s engine time")
        return lines

    # -- aggregate metrics -------------------------------------------------
    def totals(self) -> Dict[str, object]:
        total_props = 0
        total_loc = 0
        engine_time = 0.0
        solve_time = 0.0
        counted_cases = set()
        for job, result in zip(self.jobs, self.results):
            if result.ok and job.variant == "fixed" and \
                    job.case_id not in counted_cases:
                # One FT per design: config sweeps re-run the same FT, so
                # count each case once.
                counted_cases.add(job.case_id)
                total_props += result.payload.get("property_count", 0)
                total_loc += result.payload.get("annotation_loc", 0)
            if result.ok and result.payload:
                engine_time += result.payload.get("engine_time_s", 0.0)
                solve_time += result.payload.get("solve_time_s", 0.0)
        return {
            "jobs": len(self.jobs), "ok": self.num_ok,
            "failed": self.num_failed, "cached": self.num_cached,
            "workers": self.workers,
            "properties": total_props, "annotation_loc": total_loc,
            "wall_time_s": self.wall_time_s,
            "engine_time_s": engine_time,
            "solve_time_s": solve_time,
            "schedule": self.schedule,
            "steals": self.steals,
            "transport": self.transport,
        }

    def phase_breakdown(self) -> Dict[str, float]:
        """Where the campaign's time went, by pipeline phase.

        * ``frontend_s`` — parent-side FT generation + compile (summed
          from ``compile_done`` notices);
        * ``solve_s`` — seconds inside SAT ``solve()`` calls, across all
          workers;
        * ``engine_other_s`` — engine time that was *not* solving:
          encoding, unrolling, orchestration;
        * ``overhead_s`` — wall time not accounted to any phase:
          scheduling, fork/wire latency, result plumbing.  Clamped at 0:
        on multi-worker runs phase seconds accrue in parallel and can
        legitimately exceed wall time, so the breakdown reads cleanly
        only against 1-worker (or busy-seconds) baselines.
        """
        totals = self.totals()
        engine = float(totals["engine_time_s"])
        solve = float(totals["solve_time_s"])
        frontend = self.frontend_time_s
        return {
            "frontend_s": round(frontend, 3),
            "solve_s": round(solve, 3),
            "engine_other_s": round(max(0.0, engine - solve), 3),
            "overhead_s": round(
                max(0.0, self.wall_time_s - frontend - engine), 3),
            "wall_s": round(self.wall_time_s, 3),
        }

    # -- exports -----------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        return {
            "totals": self.totals(),
            "phases": self.phase_breakdown(),
            "rows": [row.as_dict() for row in self.rows()],
            "config_comparison": self.config_comparison(),
            "results": [
                {"job_id": r.job_id, "status": r.status,
                 "from_cache": r.from_cache, "wall_time_s": r.wall_time_s,
                 "original_wall_time_s": r.original_wall_time_s,
                 "steals": r.steals,
                 "error": r.error, "payload": r.payload}
                for r in self.results
            ],
            "cache": self.cache_stats,
            "workers": self.worker_stats,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def to_markdown(self) -> str:
        lines = ["| Module | Result | proof (fixed) | proof (buggy) | "
                 "time |",
                 "|---|---|---|---|---|"]
        for row in self.rows():
            fixed = ("—" if row.fixed_proof_rate is None
                     else f"{row.fixed_proof_rate:.0%}")
            buggy = ("—" if row.buggy_proof_rate is None
                     else f"{row.buggy_proof_rate:.0%}")
            lines.append(f"| {row.case_id}. {row.name} | {row.outcome} | "
                         f"{fixed} | {buggy} | {row.time_s:.1f}s |")
        totals = self.totals()
        lines.append("")
        lines.append(
            f"{totals['jobs']} jobs ({totals['cached']} cached, "
            f"{totals['failed']} failed) on {totals['workers']} worker(s) "
            f"in {totals['wall_time_s']:.1f}s; {totals['properties']} "
            f"properties from {totals['annotation_loc']} annotation LoC.")
        phases = self.phase_breakdown()
        lines.append("")
        lines.append(
            f"Phases: frontend {phases['frontend_s']:.1f}s, solve "
            f"{phases['solve_s']:.1f}s, engine-other "
            f"{phases['engine_other_s']:.1f}s, overhead "
            f"{phases['overhead_s']:.1f}s (wall {phases['wall_s']:.1f}s).")
        if self.worker_stats:
            lines.append("")
            lines.append("### Workers")
            lines.append("| Worker | slots | tasks | busy | util | "
                         "steals granted | heartbeat RTT |")
            lines.append("|---|---|---|---|---|---|---|")
            for entry in self.worker_stats:
                lines.append(
                    f"| {entry.get('worker')} | {entry.get('slots')} | "
                    f"{entry.get('tasks')} | "
                    f"{entry.get('busy_s', 0.0):.1f}s | "
                    f"{entry.get('utilization', 0.0):.0%} | "
                    f"{entry.get('steals_granted', 0)} | "
                    f"{_rtt_text(entry.get('heartbeat_rtt_ms'))} |")
        if len(self.swept_configs) > 1:
            lines.append("")
            lines.append("### Config sweep")
            for text in self._comparison_lines():
                lines.append(f"- {text}")
        return "\n".join(lines)

    def summary(self) -> str:
        """Fixed-width table for terminals (the Table III shape)."""
        lines = [f"{'RTL Module':<36} {'Result':<55} {'time':>7}"]
        for row in self.rows():
            label = f"{row.case_id}. {row.name}"
            note = ""
            if row.original_time_s:
                note = f"  (cached; originally {row.original_time_s:.1f}s)"
            if row.steals:
                note += f"  [{row.steals} steal(s)]"
            lines.append(f"{label:<36} {row.outcome:<55} "
                         f"{row.time_s:6.1f}s{note}")
            for error in row.errors:
                lines.append(f"  !! {error}")
            for mismatch in row.mismatches:
                lines.append(f"  ?? expectation: {mismatch}")
        totals = self.totals()
        lines.append(
            f"\nTotals: {totals['properties']} generated properties from "
            f"{totals['annotation_loc']} annotation LoC; {totals['jobs']} "
            f"jobs ({totals['cached']} cached) on {totals['workers']} "
            f"worker(s) in {totals['wall_time_s']:.1f}s "
            f"(engine time {totals['engine_time_s']:.1f}s)")
        phases = self.phase_breakdown()
        lines.append(
            f"Phases: frontend {phases['frontend_s']:.1f}s | solve "
            f"{phases['solve_s']:.1f}s | engine-other "
            f"{phases['engine_other_s']:.1f}s | overhead "
            f"{phases['overhead_s']:.1f}s")
        if self.schedule is not None:
            lines.append(
                f"Scheduling: {self.schedule}"
                + (f", {self.steals} work-stealing re-split(s)"
                   if self.steals else ", no steals")
                + (f", transport {self.transport}"
                   if self.transport else ""))
        if self.worker_stats:
            lines.append("\nWorker fabric:")
            lines.append(f"  {'worker':<28} {'slots':>5} {'tasks':>5} "
                         f"{'busy':>8} {'util':>5} {'steals':>6} "
                         f"{'rtt':>16}")
            for entry in self.worker_stats:
                label = str(entry.get("worker"))
                if entry.get("departed") not in (None, "shutdown"):
                    label += " (died)"
                lines.append(
                    f"  {label:<28} {entry.get('slots', 0):>5} "
                    f"{entry.get('tasks', 0):>5} "
                    f"{entry.get('busy_s', 0.0):>7.1f}s "
                    f"{entry.get('utilization', 0.0):>5.0%} "
                    f"{entry.get('steals_granted', 0):>6} "
                    f"{_rtt_text(entry.get('heartbeat_rtt_ms')):>16}")
        if len(self.swept_configs) > 1:
            lines.append("\nConfig sweep comparison:")
            for text in self._comparison_lines():
                lines.append(f"  {text}")
        return "\n".join(lines)
