"""Per-property cost estimation and LPT bin packing for campaign sharding.

The units a campaign schedules differ in cost by orders of magnitude: a
liveness property compiles an L2S monitor and hunts lassos across the
whole frame range, an assert pays BMC plus a proof attempt, a cover is a
single reachability sweep.  Chunking a design's property inventory in
*declaration* order therefore produces wildly unbalanced tasks — one
group of liveness lassos dominates the pool while groups of covers finish
instantly.

This module provides the cost side of the ``--schedule cost`` pipeline:

* :class:`CostModel` — estimates one property's check cost from its
  *kind* (liveness ≫ assert ≫ cover), the size of its cone of influence
  (solver work scales with the latches actually encoded) and the engine
  bounds (deeper sweeps/proofs cost more).  Units are arbitrary "cost
  units" out of the box; calibration rescales them toward measured
  seconds.
* :func:`pack_lpt` — Longest-Processing-Time-first bin packing: packs
  property costs into a fixed number of balanced bins (the classic 4/3
  approximation of the makespan optimum), replacing inventory-order
  chunking.
* :meth:`CostModel.calibrated` — folds measured per-task wall times (the
  ``timings`` records :class:`~repro.campaign.history.CampaignHistory`
  appends) back into the kind weights, so repeated campaigns converge on
  the actual machine's cost ratios.

Everything here is pure data-in/data-out — no imports from the API or
scheduler layers — so the model is equally usable parent-side (grouping,
issue order) and by a future remote scheduler.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Mapping, Sequence

__all__ = ["CostModel", "DEFAULT_KIND_WEIGHTS", "pack_lpt"]

#: Relative per-property base weights by kind.  The ratios encode the
#: engine's structure (liveness = L2S compile + lasso hunt + proof;
#: assert = sweep + proof attempt; cover = sweep only) and were sanity-
#: checked against measured corpus task times; calibration refines them.
DEFAULT_KIND_WEIGHTS: Dict[str, float] = {
    "live": 24.0,
    "assert": 6.0,
    "cover": 1.0,
}

#: Cost multiplier per COI latch: a property whose cone covers the whole
#: design costs a few times one whose cone is a handful of control bits.
_COI_SCALE = 0.02

#: Calibration never moves a weight more than this factor in one run —
#: a single noisy campaign must not invert the liveness ≫ cover ordering.
_MAX_CALIBRATION_STEP = 4.0

#: Calibrated weights snap to quarter-octave buckets (~19% wide).  The
#: model fingerprint keys the shard-plan cache, so raw float medians
#: would re-key every cached plan on every run from timing noise alone;
#: quantization makes the fingerprint stable until ratios genuinely move.
_QUANT_BUCKETS_PER_OCTAVE = 4


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _quantize(weight: float) -> float:
    if weight <= 0:
        return weight
    step = round(math.log2(weight) * _QUANT_BUCKETS_PER_OCTAVE)
    return round(2.0 ** (step / _QUANT_BUCKETS_PER_OCTAVE), 6)


@dataclass(frozen=True)
class CostModel:
    """Estimates property-group check cost for scheduling decisions."""

    kind_weights: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_KIND_WEIGHTS))
    coi_scale: float = _COI_SCALE

    # -- estimation --------------------------------------------------------
    def property_cost(self, kind: str, coi_size: int = 0,
                      max_bound: int = 0, max_frames: int = 0) -> float:
        """Estimated cost of checking one property, in model units.

        ``coi_size`` is the property's cone-of-influence latch count (0 =
        unknown, costs the base weight); ``max_bound``/``max_frames`` are
        the engine bounds — covers pay the sweep depth, asserts and
        liveness additionally pay the proof frame budget.
        """
        base = float(self.kind_weights.get(kind, 1.0))
        depth = max(1, max_bound)
        if kind in ("assert", "live"):
            depth += max(0, max_frames)
        return base * (1.0 + self.coi_scale * max(0, coi_size)) \
            * depth / 10.0

    def task_cost(self, task, config=None) -> float:
        """Estimated cost of one :class:`~repro.api.task.PropertyTask`.

        Uses the per-property ``kinds``/``coi_sizes`` metadata sharding
        attaches; properties without metadata cost one base unit, so the
        model degrades to property-count balancing instead of failing.
        """
        config = config if config is not None \
            else getattr(task, "engine_config", None)
        max_bound = getattr(config, "max_bound", 0) if config else 0
        max_frames = getattr(config, "max_frames", 0) if config else 0
        kinds = getattr(task, "kinds", ()) or ()
        cois = getattr(task, "coi_sizes", ()) or ()
        names = getattr(task, "properties", ()) or ()
        total = 0.0
        for position in range(len(names)):
            kind = kinds[position] if position < len(kinds) else "assert"
            coi = cois[position] if position < len(cois) else 0
            total += self.property_cost(kind, coi, max_bound, max_frames)
        return total if names else 1.0

    def fingerprint(self) -> str:
        """Content hash input for plan-cache keys: grouping depends on
        the model, so a recalibrated model must re-key cached plans."""
        return json.dumps({"weights": dict(sorted(self.kind_weights.items())),
                           "coi_scale": round(self.coi_scale, 6)},
                          sort_keys=True)

    # -- calibration -------------------------------------------------------
    def calibrated(self, samples: Iterable[Mapping]) -> "CostModel":
        """A new model with kind weights rescaled by measured wall times.

        ``samples`` are the timing records the campaign history appends:
        mappings with ``kinds`` (kind → property count) and ``wall_time_s``.
        Unknown fields (``worker`` identity, future additions) are
        ignored, so records written by newer builds — or filtered per
        host via :meth:`CampaignHistory.timing_samples` — feed in
        unchanged.  Only single-kind samples identify a kind's cost
        unambiguously, so calibration uses those.

        Only cross-kind *ratios* matter for bin balancing, so measured
        seconds are converted into model units through an **anchor** kind
        (the cheapest measured one): every measured kind's weight becomes
        its median seconds relative to the anchor's, scaled by the
        anchor's current weight.  With fewer than two measured kinds
        there is no ratio information and the model is returned unchanged
        — raw seconds must never mix with unmeasured kinds' abstract
        units.  Each weight moves at most ``_MAX_CALIBRATION_STEP`` × per
        run and snaps to a quantization bucket, so the fingerprint (and
        with it every shard-plan cache key) shifts only when ratios
        genuinely drift, not from run-to-run timing noise.
        """
        per_kind: Dict[str, List[float]] = {}
        for sample in samples:
            kinds = sample.get("kinds") or {}
            wall = sample.get("wall_time_s")
            if wall is None or len(kinds) != 1:
                continue
            (kind, count), = kinds.items()
            if count and wall > 0:
                per_kind.setdefault(kind, []).append(wall / count)
        if len(per_kind) < 2:
            return self
        medians = {kind: _median(seconds)
                   for kind, seconds in per_kind.items()}
        weights = dict(self.kind_weights)
        anchor = min(medians, key=lambda kind: (medians[kind], kind))
        unit = medians[anchor] / weights.get(anchor, 1.0)
        for kind, measured in medians.items():
            if kind == anchor:
                continue
            current = weights.get(kind, 1.0)
            target = measured / unit
            lo = current / _MAX_CALIBRATION_STEP
            hi = current * _MAX_CALIBRATION_STEP
            weights[kind] = _quantize(min(max(target, lo), hi))
        return replace(self, kind_weights=weights)


def pack_lpt(costs: Sequence[float], bins: int) -> List[List[int]]:
    """Pack item indices into ``bins`` cost-balanced bins, LPT-greedy.

    Items are assigned in descending cost order to the least-loaded bin
    (ties broken by index / bin number, so packing is deterministic).
    Returns non-empty bins ordered by **descending total cost** — the
    issue order that keeps the costliest work at the front of the queue —
    with indices inside each bin in ascending (inventory) order.
    """
    if bins < 1:
        raise ValueError("bins must be >= 1")
    bins = min(bins, len(costs)) or 1
    loads = [0.0] * bins
    packed: List[List[int]] = [[] for _ in range(bins)]
    order = sorted(range(len(costs)), key=lambda i: (-costs[i], i))
    for index in order:
        target = min(range(bins), key=lambda b: (loads[b], b))
        packed[target].append(index)
        loads[target] += costs[index]
    filled = [(loads[b], packed[b]) for b in range(bins) if packed[b]]
    filled.sort(key=lambda pair: (-pair[0], pair[1][0]))
    return [sorted(indices) for _, indices in filled]
