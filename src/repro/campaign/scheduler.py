"""The campaign scheduler: a bounded worker pool with streaming results.

Design points:

* **Parallelism** — each job runs in its own forked worker process; at
  most ``workers`` are alive at once.  Model checking is CPU-bound pure
  Python, so processes (not threads) are the only way to scale past the
  GIL.
* **Streaming** — :func:`iter_campaign` is the primitive: a generator
  yielding ``(index, JobResult)`` as jobs finish, in completion order.
  :class:`repro.api.VerificationSession` builds its ``TaskEvent`` stream on
  it; :func:`run_campaign` is the batch wrapper that collects the stream
  back into job order.
* **Per-job bounds** — a wall-clock deadline per job (the parent
  terminates overdue workers) and an address-space cap applied with
  ``resource.setrlimit`` inside the worker, mirroring the execution-scope
  resource bounding of the reference orchestrators.
* **Deterministic ordering** — ``run_campaign`` returns results in job
  order; the worker count can only change wall time, never the result
  list.
* **Failure isolation** — a job that raises, exhausts memory, dies, or
  times out yields a per-job ``error``/``timeout`` result; the campaign
  always runs to completion.
* **Incremental reruns** — with an :class:`~repro.campaign.cache.ArtifactCache`
  attached, jobs whose content hash is cached replay instantly and never
  reach a worker.

The scheduler is unit-agnostic: a "job" is anything picklable with a
``job_id`` attribute that ``runner`` can execute — a whole-design
:class:`~repro.campaign.jobs.CampaignJob` (the default) or a per-property
:class:`~repro.api.task.PropertyTask`.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from .cache import ArtifactCache
from .jobs import CampaignJob, execute_job

__all__ = ["JobResult", "iter_campaign", "run_campaign"]

_POLL_INTERVAL_S = 0.02


@dataclass
class JobResult:
    """Outcome of one campaign job.

    ``status`` is ``"ok"`` (payload carries the engine summary),
    ``"error"`` (the job raised / crashed / hit the memory cap; ``error``
    carries the reason) or ``"timeout"``.  ``payload`` is plain JSON-able
    data in all cases (possibly None), so results cross process and disk
    boundaries unchanged.
    """

    job_id: str
    status: str
    payload: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    wall_time_s: float = 0.0
    from_cache: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _child_main(conn, runner, job, memory_limit_mb) -> None:
    """Worker entry point: run one job, ship one (status, payload, error)."""
    try:
        if memory_limit_mb:
            limit = int(memory_limit_mb) * 1024 * 1024
            try:
                import resource
                resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
            except (ImportError, ValueError, OSError):
                pass  # unsupported platform: run unbounded
        payload = runner(job)
        conn.send(("ok", payload, None))
    except MemoryError:
        conn.send(("error", None,
                   f"memory limit ({memory_limit_mb} MB) exceeded"))
    except BaseException:
        try:
            conn.send(("error", None, traceback.format_exc(limit=10)))
        except Exception:
            pass
    finally:
        conn.close()


@dataclass
class _Running:
    index: int
    process: multiprocessing.Process
    conn: object
    started: float
    deadline: Optional[float]


def iter_campaign(jobs: Sequence[CampaignJob],
                  workers: int = 1,
                  cache: Optional[ArtifactCache] = None,
                  timeout_s: Optional[float] = None,
                  memory_limit_mb: Optional[int] = None,
                  runner: Callable[[CampaignJob], Dict[str, object]]
                  = execute_job
                  ) -> Iterator[Tuple[int, JobResult]]:
    """Run ``jobs`` on a worker pool, yielding results as they finish.

    Yields ``(index, result)`` pairs in **completion order** (cached jobs
    first, then whatever lands).  ``index`` is the job's position in the
    input sequence, so callers can rebuild job order.  Abandoning the
    generator terminates any still-running workers.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if timeout_s is not None and timeout_s <= 0:
        raise ValueError("timeout_s must be positive (None = unbounded)")
    if memory_limit_mb is not None and memory_limit_mb <= 0:
        raise ValueError(
            "memory_limit_mb must be positive (None = unbounded)")
    jobs = list(jobs)
    keys: List[Optional[str]] = [None] * len(jobs)

    # Cache pass: anything already known never reaches a worker.
    pending: List[int] = []
    for index, job in enumerate(jobs):
        if cache is not None:
            try:
                keys[index] = cache.key(job)
            except Exception:
                keys[index] = None  # unloadable source: the worker reports it
            payload = (cache.get(keys[index])
                       if keys[index] is not None else None)
            if payload is not None:
                yield index, JobResult(
                    job_id=job.job_id, status="ok", payload=payload,
                    wall_time_s=0.0, from_cache=True)
                continue
        pending.append(index)

    # Fork is load-bearing, not just the Linux default: workers must
    # inherit the parent's populated COMPILE_CACHE for the one-compile-
    # per-design guarantee of property sharding.  On platforms without
    # fork (Windows) fall back to the default context — correctness holds
    # (workers recompile), only the sharing optimization is lost.
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        context = multiprocessing.get_context()
    queue: List[int] = list(pending)
    running: List[_Running] = []

    def finish(slot: _Running, result: JobResult) -> JobResult:
        result.wall_time_s = time.monotonic() - slot.started
        if result.ok and cache is not None and keys[slot.index] is not None:
            cache.put(keys[slot.index], result.payload)
        return result

    try:
        while queue or running:
            # Launch while worker slots are free.
            while queue and len(running) < workers:
                index = queue.pop(0)
                parent_conn, child_conn = context.Pipe(duplex=False)
                process = context.Process(
                    target=_child_main,
                    args=(child_conn, runner, jobs[index], memory_limit_mb))
                process.start()
                child_conn.close()
                now = time.monotonic()
                running.append(_Running(
                    index=index, process=process, conn=parent_conn,
                    started=now,
                    deadline=(now + timeout_s) if timeout_s is not None
                    else None))

            still: List[_Running] = []
            for slot in running:
                job = jobs[slot.index]
                if slot.conn.poll(_POLL_INTERVAL_S / max(1, len(running))):
                    try:
                        status, payload, error = slot.conn.recv()
                        slot.process.join()
                    except EOFError:
                        slot.process.join()
                        status, payload, error = (
                            "error", None,
                            f"worker died with exit code "
                            f"{slot.process.exitcode}")
                    slot.conn.close()
                    yield slot.index, finish(slot, JobResult(
                        job_id=job.job_id, status=status,
                        payload=payload, error=error))
                    continue
                if slot.deadline is not None and \
                        time.monotonic() > slot.deadline:
                    # A result that landed since the poll above wins over
                    # the deadline — don't discard completed work.
                    if slot.conn.poll(0):
                        still.append(slot)
                        continue
                    slot.process.terminate()
                    slot.process.join()
                    slot.conn.close()
                    yield slot.index, finish(slot, JobResult(
                        job_id=job.job_id, status="timeout",
                        error=f"wall-clock limit ({timeout_s:.1f}s) "
                              f"exceeded"))
                    continue
                if not slot.process.is_alive():
                    # The worker may have sent its result and exited in the
                    # window since the poll above — drain the pipe before
                    # declaring it dead.
                    if slot.conn.poll(0):
                        try:
                            status, payload, error = slot.conn.recv()
                        except EOFError:
                            status, payload, error = (
                                "error", None,
                                f"worker died with exit code "
                                f"{slot.process.exitcode}")
                        slot.conn.close()
                        slot.process.join()
                        yield slot.index, finish(slot, JobResult(
                            job_id=job.job_id, status=status,
                            payload=payload, error=error))
                        continue
                    # Died without a message (e.g. hard OOM kill).
                    slot.conn.close()
                    slot.process.join()
                    yield slot.index, finish(slot, JobResult(
                        job_id=job.job_id, status="error",
                        error=f"worker died with exit code "
                              f"{slot.process.exitcode}"))
                    continue
                still.append(slot)
            running = still
    finally:
        for slot in running:  # interrupted/abandoned: leave no orphans
            slot.process.terminate()
            slot.process.join()


def run_campaign(jobs: Sequence[CampaignJob],
                 workers: int = 1,
                 cache: Optional[ArtifactCache] = None,
                 timeout_s: Optional[float] = None,
                 memory_limit_mb: Optional[int] = None,
                 runner: Callable[[CampaignJob], Dict[str, object]]
                 = execute_job,
                 progress: Optional[Callable[[JobResult], None]] = None
                 ) -> List[JobResult]:
    """Run ``jobs`` on a pool of ``workers`` processes (batch wrapper).

    Returns one :class:`JobResult` per job, **in job order**, regardless of
    worker count or completion order.  ``progress`` (if given) is called
    with each result as it lands, in completion order.  Streaming consumers
    use :func:`iter_campaign` directly.
    """
    jobs = list(jobs)
    results: List[Optional[JobResult]] = [None] * len(jobs)
    for index, result in iter_campaign(
            jobs, workers=workers, cache=cache, timeout_s=timeout_s,
            memory_limit_mb=memory_limit_mb, runner=runner):
        results[index] = result
        if progress:
            progress(result)
    return [result for result in results if result is not None]
