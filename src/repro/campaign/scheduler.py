"""The campaign scheduler: a streaming worker pool fed by a job source.

Design points:

* **Parallelism** — each job runs in its own forked worker process; at
  most ``workers`` are alive at once.  Model checking is CPU-bound pure
  Python, so processes (not threads) are the only way to scale past the
  GIL.
* **Streaming input** — :class:`Scheduler` consumes an *iterator* of
  jobs, pulling the next one only when a worker slot frees up.  A source
  that does expensive parent-side work per job (the property-sharding
  frontend: FT generation + compile) therefore overlaps that work with
  the checking of already-issued jobs.  A plain list works too
  (:func:`iter_campaign` is the list-shaped shim).
* **Pluggable transports** — *where* a job executes is a transport
  decision: the default :class:`LocalTransport` forks processes on this
  host (the behavior the pre-fabric scheduler hard-coded);
  :class:`~repro.dist.coordinator.TcpTransport` dispatches the same jobs
  to remote worker agents over the wire.  The scheduler owns everything
  verdict-relevant — source pulling, cache replay, steal bookkeeping,
  event ordering — so transports can only change *where* cycles burn,
  never what the campaign concludes.
* **Event-driven waiting** — the pool blocks in
  :func:`multiprocessing.connection.wait` on the worker pipes instead of
  polling each one on a fixed interval.  The wait timeout is bounded by
  the nearest per-job deadline, so wall-clock limits fire within
  :data:`_DEADLINE_SLACK_S` of expiry instead of a poll period later.
* **Work stealing** — when the source is exhausted and more worker slots
  are free than jobs are queued, the scheduler asks ``split`` to re-split
  the costliest queued job and issues the halves, keeping the tail of a
  campaign parallel.  ``combine`` folds the halves' payloads back into
  the parent's shape so the artifact cache still receives one entry per
  *original* job (a warm rerun replays it no matter how the cold run was
  split).  Remote transports extend the same idea across hosts: at the
  tail the coordinator reclaims not-yet-started tasks from busy workers
  (steal grants), which re-enter this queue and split like any other.
* **Per-job bounds** — a wall-clock deadline per job (the parent
  terminates overdue workers) and an address-space cap applied with
  ``resource.setrlimit`` inside the worker, mirroring the execution-scope
  resource bounding of the reference orchestrators.  Remote workers
  enforce the same bounds locally, agent-side.
* **Deterministic results** — ``run_campaign`` returns results in job
  order; worker count, schedule, stealing and transport can only change
  wall time and task *grouping*, never the per-property verdicts
  downstream consumers aggregate.
* **Failure isolation** — a job that raises, exhausts memory, dies, or
  times out yields a per-job ``error``/``timeout`` result; a *worker*
  (remote agent) that dies gets its in-flight jobs requeued — excluded
  from the dead worker — exactly once per death; the campaign always
  runs to completion.
* **Incremental reruns** — with an :class:`~repro.campaign.cache.ArtifactCache`
  attached, jobs whose content hash is cached replay instantly and never
  reach a worker.  The cache check happens at admission —
  coordinator-side — so on a remote transport a warm rerun never ships a
  job's sources over the wire at all.  Cache entries remember the
  original check wall time, which replayed results surface as
  ``original_wall_time_s``.

The scheduler is unit-agnostic: a "job" is anything picklable with a
``job_id`` attribute that ``runner`` can execute — a whole-design
:class:`~repro.campaign.jobs.CampaignJob` (the default) or a per-property
:class:`~repro.api.task.PropertyTask`.  A source may also yield
:class:`SourceNotice` markers (compile progress from the sharding
frontend); they pass through the event stream untouched.

**Session multiplexing (the service seam).**  A long-lived source (the
campaign service's broker) may yield ``None`` to say "temporarily dry —
nothing admissible right now, but do not treat me as exhausted".  The
scheduler then stops pulling for the current round and re-probes the
source on the next one; only :class:`StopIteration` ends the run.  A
blocking source should bound its own internal wait (~0.1s) so the idle
loop stays responsive without busy-spinning.  :meth:`Scheduler.cancel_where`
is the matching retraction hook: it cancels queued (and
transport-returned) jobs without touching verdicts of work already
running.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import sys
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import (Callable, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Set, Tuple)

from ..obs import METRICS, TRACER, absorb_obs, collect_obs
from .cache import ArtifactCache
from .jobs import CampaignJob, execute_job

__all__ = ["JobResult", "LocalTransport", "RetryPolicy", "Scheduler",
           "SourceNotice", "classify_failure",
           "iter_campaign", "resolve_worker_count", "run_campaign"]

#: Upper bound on how long a worker's deadline may overshoot: the pool
#: never sleeps past the earliest deadline, and never longer than this
#: between bookkeeping rounds even without deadlines.
_DEADLINE_SLACK_S = 0.05
_IDLE_WAIT_S = 1.0

_WARNED_SINGLE_CORE = False


def resolve_worker_count(value, flag: str = "--workers") -> int:
    """Resolve a worker/slot count argument; ``"auto"`` = CPU count.

    Accepts an int, a decimal string or the literal ``"auto"`` (case
    insensitive), which resolves to ``os.cpu_count()``.  On a single-core
    host a once-per-process note is printed to stderr — parallel workers
    can only time-slice one core there, which surprises both users and
    wall-clock assertions in benchmarks.
    """
    global _WARNED_SINGLE_CORE
    if isinstance(value, str):
        text = value.strip().lower()
        if text == "auto":
            value = os.cpu_count() or 1
            if value == 1 and not _WARNED_SINGLE_CORE:
                _WARNED_SINGLE_CORE = True
                print(f"autosva: note: {flag} auto resolved to 1 — this "
                      f"host has a single CPU core; parallel workers "
                      f"would only time-slice it", file=sys.stderr)
        else:
            try:
                value = int(text)
            except ValueError:
                raise ValueError(
                    f"{flag} expects a positive integer or 'auto', "
                    f"got {value!r}") from None
    if not isinstance(value, int) or value < 1:
        raise ValueError(f"{flag} must be >= 1 (or 'auto'), got {value!r}")
    return value


@dataclass
class JobResult:
    """Outcome of one campaign job.

    ``status`` is ``"ok"`` (payload carries the engine summary),
    ``"error"`` (the job raised / crashed / hit the memory cap; ``error``
    carries the reason) or ``"timeout"``.  ``payload`` is plain JSON-able
    data in all cases (possibly None), so results cross process and disk
    boundaries unchanged.  A cache replay sets ``from_cache`` and carries
    the *original* check wall time in ``original_wall_time_s``
    (``wall_time_s`` is then the replay time, effectively zero).
    ``worker`` identifies where the job executed (``host:pid`` — the
    forked child locally, the remote agent on a TCP fabric), so timing
    samples from heterogeneous hosts can be told apart downstream.
    """

    job_id: str
    status: str
    payload: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    wall_time_s: float = 0.0
    from_cache: bool = False
    original_wall_time_s: Optional[float] = None
    #: Number of times this job's work was re-split by work stealing
    #: (only set on merged per-design results, see the campaign layer).
    steals: int = 0
    #: ``host:pid`` of the process that executed the job (None for cache
    #: replays, which execute nothing).
    worker: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass(frozen=True)
class SourceNotice:
    """A pass-through marker a job source may emit between jobs.

    The sharding frontend uses these to surface ``compile_started`` /
    ``compile_done`` progress into the session's event stream; the
    scheduler forwards them in-order and otherwise ignores them.
    """

    kind: str                 # "compile_started" | "compile_done"
    design: str
    wall_time_s: float = 0.0
    from_cache: bool = False


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded automatic retry of *transient* job failures.

    A worker process dying mid-task (signal, OOM kill, injected chaos,
    a flaky fabric connection) says nothing about the job itself — the
    same task re-run on a healthy worker usually succeeds.  A traceback,
    a wall-clock timeout or the in-process memory cap, by contrast, is
    the *job's* deterministic verdict and retrying it just burns a slot
    reproducing it.  :func:`classify_failure` draws that line;
    ``max_retries`` bounds how often a transient failure re-enters the
    queue before its error result surfaces anyway (so a task that is
    somehow poison to every worker still terminates the campaign).
    """

    max_retries: int = 2


def classify_failure(result: JobResult) -> str:
    """``"transient"`` (retry may help) or ``"deterministic"``.

    Only worker-death errors — ``reap_child``'s "worker died with exit
    code N", produced when a child vanishes without reporting — classify
    as transient.  Timeouts, tracebacks and the enforced memory limit
    reproduce on re-run.  (A kernel OOM kill also reads as a death and
    will retry; the retry bound keeps that cheap and terminal.)
    """
    if result.status == "error" and result.error \
            and result.error.startswith("worker died with exit code"):
        return "transient"
    return "deterministic"


def _safe_collect_obs():
    """Child-side telemetry drain that never masks the job's outcome."""
    try:
        return collect_obs()
    except Exception:
        return None


def _child_main(conn, runner, job, memory_limit_mb) -> None:
    """Worker entry point: run one job, ship one
    (status, payload, error, obs) tuple.

    Shared by the local transport's forked children and the remote
    worker agent's — the execution scope (rlimit, error envelope) must
    not drift between transports or verdict equivalence drifts with it.
    ``obs`` is the child's drained telemetry (spans + metric deltas, see
    :func:`repro.obs.collect_obs`) or None; the fork-safety check inside
    the tracer/registry guarantees it holds only what *this* child
    recorded, never inherited parent state.
    """
    try:
        if memory_limit_mb:
            limit = int(memory_limit_mb) * 1024 * 1024
            try:
                import resource
                resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
            except (ImportError, ValueError, OSError):
                pass  # unsupported platform: run unbounded
        payload = runner(job)
        conn.send(("ok", payload, None, _safe_collect_obs()))
    except MemoryError:
        conn.send(("error", None,
                   f"memory limit ({memory_limit_mb} MB) exceeded",
                   _safe_collect_obs()))
    except BaseException:
        try:
            conn.send(("error", None, traceback.format_exc(limit=10),
                       _safe_collect_obs()))
        except Exception:
            pass
    finally:
        conn.close()


@dataclass
class _Running:
    index: int
    job: object
    process: multiprocessing.Process
    conn: object
    started: float
    deadline: Optional[float]


def fork_context():
    """The multiprocessing context every execution scope forks with.

    Fork is load-bearing, not just the Linux default: children must
    inherit the parent's populated COMPILE_CACHE for the one-compile-
    per-design guarantee (local pool and remote worker agents alike).
    On platforms without fork (Windows) fall back to the default
    context — correctness holds (children recompile), only the sharing
    is lost.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()


def reap_child(conn, process, deadline: Optional[float], now: float,
               timeout_s: Optional[float]
               ) -> Optional[Tuple[str, object, Optional[str], object]]:
    """The ONE reap decision for a forked task child, any transport.

    Returns ``None`` while the child should keep running, else a
    ``(status, payload, error, obs)`` tuple with the pipe closed and the
    process joined — ``obs`` is the child's drained telemetry (or None
    when the child died/timed out before shipping).  Shared by
    :class:`LocalTransport` and the remote worker agent so the semantics
    cannot drift between transports: a result that is already in the
    pipe wins over an expired deadline (completed work is never
    discarded), a closed pipe without a result means the child died
    (crash, hard OOM kill), and an overdue child is terminated with the
    standard timeout message.
    """
    if conn.poll(0):
        obs = None
        try:
            message = conn.recv()
            process.join()
            status, payload, error = message[:3]
            if len(message) > 3:
                obs = message[3]
        except EOFError:
            process.join()
            status, payload, error = (
                "error", None,
                f"worker died with exit code {process.exitcode}")
        conn.close()
        return status, payload, error, obs
    if deadline is not None and now > deadline:
        process.terminate()
        process.join()
        conn.close()
        return ("timeout", None,
                f"wall-clock limit ({timeout_s:.1f}s) exceeded", None)
    return None


class LocalTransport:
    """The default execution backend: forked processes on this host.

    This is the transport contract every backend implements (duck-typed;
    :class:`~repro.dist.coordinator.TcpTransport` is the remote peer):

    * :meth:`bind` — receive the scheduler's runner and per-job bounds;
    * :meth:`free_slots` / :meth:`in_flight` — capacity accounting;
    * :meth:`dispatch` — start one job, honoring a worker-exclusion set
      (returns False when no acceptable slot exists right now);
    * :meth:`step` — block (bounded) until something happens; return
      ``(finished, requeued)`` where ``finished`` is
      ``[(index, job, JobResult), ...]`` and ``requeued`` is
      ``[(index, job, dead_worker_id_or_None), ...]`` — jobs the
      transport gives back (worker death, steal grants);
    * :meth:`reclaim` — tail hook: pull back not-yet-started work from
      busy workers, if the transport holds any (no-op here: local
      dispatch is start);
    * ``wait_when_idle`` — True when :meth:`step` is meaningful with
      nothing in flight (a remote pool waits for workers to join; a
      local fork pool never needs to).

    Locally a "worker" is one forked child per job, so exclusion sets
    and requeues never trigger: a child death is a per-job ``error``
    (failure isolation), not a lost worker.
    """

    wait_when_idle = False
    #: Workers share this process's memory via fork, so parent-side
    #: precompiles reach them.  Remote transports set True — their
    #: agents hold their own compile caches and a parent-side compile
    #: would be wasted work.
    remote = False

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.runner: Callable = execute_job
        self.timeout_s: Optional[float] = None
        self.memory_limit_mb: Optional[int] = None
        self._host = socket.gethostname()
        self._running: List[_Running] = []
        self._context = fork_context()

    def bind(self, runner: Callable, timeout_s: Optional[float],
             memory_limit_mb: Optional[int],
             cost_of: Optional[Callable] = None) -> None:
        self.runner = runner
        self.timeout_s = timeout_s
        self.memory_limit_mb = memory_limit_mb

    # -- capacity ---------------------------------------------------------
    def capacity(self) -> int:
        """Total slots that exist, busy or not (0 = nothing can ever be
        dispatched right now — the signal that lets the scheduler replay
        cache hits without waiting for a pool that may never come)."""
        return self.workers

    def free_slots(self) -> int:
        return self.workers - len(self._running)

    def in_flight(self) -> int:
        return len(self._running)

    # -- dispatch ---------------------------------------------------------
    def dispatch(self, index: int, job,
                 excluded: frozenset = frozenset()) -> bool:
        if self.free_slots() <= 0:
            return False
        parent_conn, child_conn = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_child_main,
            args=(child_conn, self.runner, job, self.memory_limit_mb))
        process.start()
        child_conn.close()
        now = time.monotonic()
        self._running.append(_Running(
            index=index, job=job, process=process, conn=parent_conn,
            started=now,
            deadline=(now + self.timeout_s) if self.timeout_s is not None
            else None))
        return True

    # -- progress ---------------------------------------------------------
    def _wait_timeout(self) -> Optional[float]:
        """How long the pool may block without missing a deadline.

        Never longer than the time to the earliest running deadline (so
        wall-clock limits fire within ``_DEADLINE_SLACK_S`` of expiry —
        the wait wakes *at* the deadline and termination follows
        immediately), and never longer than ``_IDLE_WAIT_S``.
        """
        deadlines = [slot.deadline for slot in self._running
                     if slot.deadline is not None]
        if not deadlines:
            return _IDLE_WAIT_S
        return min(max(0.0, min(deadlines) - time.monotonic()),
                   _IDLE_WAIT_S)

    def step(self) -> Tuple[List[Tuple[int, object, JobResult]],
                            List[Tuple[int, object, Optional[str]]]]:
        """Collect every finished/expired worker (may be empty)."""
        mp_connection.wait([slot.conn for slot in self._running],
                           timeout=self._wait_timeout())
        finished: List[Tuple[int, object, JobResult]] = []
        still: List[_Running] = []
        now = time.monotonic()
        for slot in self._running:
            outcome = reap_child(slot.conn, slot.process, slot.deadline,
                                 now, self.timeout_s)
            if outcome is None:
                still.append(slot)
                continue
            status, payload, error, obs = outcome
            # Same-host fork children share the monotonic clock base, so
            # their spans need no timestamp translation.
            absorb_obs(obs)
            wall = time.monotonic() - slot.started
            METRICS.histogram("scheduler.dispatch_latency_s").observe(wall)
            finished.append((slot.index, slot.job, JobResult(
                job_id=slot.job.job_id, status=status,
                payload=payload, error=error,
                wall_time_s=wall,
                worker=f"{self._host}:{slot.process.pid}")))
        self._running = still
        return finished, []

    def reclaim(self) -> None:
        """No prefetch locally: every dispatched job is already running."""

    def worker_stats(self) -> List[Dict[str, object]]:
        """Per-agent utilization is a remote-fabric concept; locally each
        job is its own short-lived process, so there is nothing to rate."""
        return []

    def close(self) -> None:
        for slot in self._running:   # interrupted/abandoned: no orphans
            slot.process.terminate()
            slot.process.join()
        self._running = []


@dataclass
class _SplitNode:
    """Book-keeping for one work-stealing split: parent = half_0 + half_1."""

    parent_job: object
    parent_key: Optional[str]
    parts: List[Optional[Dict[str, object]]] = field(
        default_factory=lambda: [None, None])
    done: List[bool] = field(default_factory=lambda: [False, False])
    failed: bool = False
    wall_time_s: float = 0.0
    #: Set when the split parent was itself a stolen half: (node, slot).
    grandparent: Optional[Tuple["_SplitNode", int]] = None


class Scheduler:
    """Streams jobs from ``source`` onto a bounded worker pool.

    :meth:`run` yields tagged events in a deterministic interleaving:

    * ``("done", index, job, result)`` — a job finished (or replayed from
      cache); ``index`` is the job's admission order.
    * ``("notice", notice)`` — a :class:`SourceNotice` the source emitted.
    * ``("steal", parent_job, (half_a, half_b))`` — a queued job was
      re-split to feed idle workers.
    * ``("requeue", job, worker_id)`` — the transport lost a worker with
      this job in flight; the job is back in the queue, excluded from
      the dead worker (remote transports only).
    * ``("retry", job, attempt, result)`` — a :class:`RetryPolicy`
      classified this failure as transient and re-queued the job instead
      of surfacing the error (its eventual outcome still arrives as
      exactly one ``done``).

    Exactly one ``done`` event is emitted per admitted job, except jobs
    consumed by a steal — their verdicts arrive through the halves'
    ``done`` events instead.

    ``transport`` selects the execution backend (default: a
    :class:`LocalTransport` forking ``workers`` processes on this host).
    """

    def __init__(self, source: Iterable,
                 workers: int = 1,
                 cache: Optional[ArtifactCache] = None,
                 timeout_s: Optional[float] = None,
                 memory_limit_mb: Optional[int] = None,
                 runner: Callable = execute_job,
                 split: Optional[Callable] = None,
                 combine: Optional[Callable] = None,
                 cost_of: Optional[Callable] = None,
                 transport=None,
                 retry: Optional[RetryPolicy] = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive (None = unbounded)")
        if memory_limit_mb is not None and memory_limit_mb <= 0:
            raise ValueError(
                "memory_limit_mb must be positive (None = unbounded)")
        self._source = iter(source)
        self.workers = workers
        self.cache = cache
        self.timeout_s = timeout_s
        self.memory_limit_mb = memory_limit_mb
        self.runner = runner
        self.split = split
        self.combine = combine
        self.cost_of = cost_of
        self.retry = retry
        #: Jobs re-split by work stealing during the run.
        self.steal_count = 0
        #: job_id -> times it was requeued after losing its worker.
        self.requeue_counts: Dict[str, int] = {}
        #: job_id -> times a transient failure was retried.
        self.retry_counts: Dict[str, int] = {}
        #: admission index -> transient-failure attempts consumed.
        self._attempts: Dict[int, int] = {}

        self._transport = transport if transport is not None \
            else LocalTransport(workers)
        self._transport.bind(runner, timeout_s, memory_limit_mb, cost_of)

        self._queue: deque = deque()      # (index, job)
        self._emit: deque = deque()       # buffered out-of-band events
        self._keys: Dict[int, Optional[str]] = {}
        #: admission index -> worker ids this job must not run on (the
        #: workers that already died holding it).
        self._excluded: Dict[int, Set[str]] = {}
        self._next_index = 0
        self._exhausted = False
        #: Set when the source yielded ``None`` ("temporarily dry") this
        #: round; cleared at the top of every run-loop iteration.
        self._source_blocked = False
        #: Cancellation predicates installed by :meth:`cancel_where`;
        #: consulted whenever a job would (re-)enter the queue.
        self._cancel_predicates: List[Callable] = []
        # job admission index -> (split node, part slot) for stolen halves.
        self._half_of: Dict[int, Tuple[_SplitNode, int]] = {}

    @property
    def transport(self):
        return self._transport

    def _capacity(self) -> int:
        capacity = getattr(self._transport, "capacity", None)
        # Transports without the hook are assumed to have slots (stay
        # lazy) — only an explicit zero unlocks capacity-free replay.
        return capacity() if capacity is not None else 1

    # -- local-transport introspection (tests reach through these) --------
    @property
    def _running(self):
        return self._transport._running

    @_running.setter
    def _running(self, value) -> None:
        self._transport._running = value

    def _wait_timeout(self) -> Optional[float]:
        return self._transport._wait_timeout()

    # -- source -----------------------------------------------------------
    def _admit(self, job) -> int:
        index = self._next_index
        self._next_index += 1
        if self.cache is not None:
            try:
                self._keys[index] = self.cache.key(job)
            except Exception:
                self._keys[index] = None  # unloadable source: worker reports
        else:
            self._keys[index] = None
        return index

    def _pull_one(self) -> None:
        """Advance the source until one runnable job is queued.

        Notices pass through to the emit buffer; cache-hit jobs replay as
        immediate ``done`` events and never occupy a worker slot — on a
        remote transport they never cross the wire either, which is what
        keeps warm reruns local no matter where cold runs executed.
        A ``None`` item marks the source *temporarily dry* (the service
        broker's multiplex seam): stop pulling this round without
        treating the source as exhausted.
        """
        while not self._exhausted:
            try:
                item = next(self._source)
            except StopIteration:
                self._exhausted = True
                return
            if item is None:
                self._source_blocked = True
                return
            if isinstance(item, SourceNotice):
                self._emit.append(("notice", item))
                continue
            index = self._admit(item)
            key = self._keys[index]
            if key is not None:
                entry = self.cache.get_entry(key)
                if entry is not None:
                    self._emit.append(("done", index, item, JobResult(
                        job_id=item.job_id, status="ok",
                        payload=entry.payload, wall_time_s=0.0,
                        from_cache=True,
                        original_wall_time_s=entry.wall_time_s)))
                    continue
            self._queue.append((index, item))
            return

    # -- cancellation (the service seam) ----------------------------------
    def _cancelled_result(self, job) -> JobResult:
        return JobResult(job_id=job.job_id, status="cancelled",
                         error="cancelled before execution")

    def _is_cancelled(self, job) -> bool:
        return any(predicate(job) for predicate in self._cancel_predicates)

    def cancel_where(self, predicate: Callable[[object], bool]) -> int:
        """Cancel queued jobs matching ``predicate``; filter later requeues.

        Each matching job still in this scheduler's queue is dropped and
        emitted as a ``("done", index, job, result)`` event with status
        ``"cancelled"`` — exactly-one-event-per-admitted-job holds, so a
        multiplexing consumer (the campaign service broker) can settle its
        bookkeeping.  The predicate is retained: jobs the transport hands
        back *later* (steal grants, worker deaths) are cancelled at
        requeue time instead of being re-dispatched, which is how a
        ``DELETE``d campaign's prefetched tasks are retracted from remote
        agents through the existing reclaim/steal machinery.  Work already
        *running* is never interrupted — its result arrives normally and
        the caller discards it.  Returns the number of queued jobs
        cancelled right now.

        Must be called from the thread driving :meth:`run` (in practice:
        from inside the source, which the scheduler itself invokes).
        """
        self._cancel_predicates.append(predicate)
        kept: deque = deque()
        cancelled = 0
        for index, job in self._queue:
            if predicate(job):
                self._emit.append(("done", index, job,
                                   self._cancelled_result(job)))
                cancelled += 1
            else:
                kept.append((index, job))
        self._queue = kept
        # Pull back not-yet-started work the transport prefetched onto
        # agents; the grants come home through _requeue, where the
        # predicate cancels them.
        self._transport.reclaim()
        return cancelled

    # -- work stealing ----------------------------------------------------
    def _try_steal(self) -> None:
        """Re-split queued jobs while idle workers outnumber them.

        Splits the costliest splittable queued job first (``cost_of``
        ranks them; admission order breaks ties), so the halves that get
        reissued are the ones most likely to still dominate the tail.
        """
        if self.split is None:
            return
        while len(self._queue) < self._transport.free_slots():
            best = None
            for position, (index, job) in enumerate(self._queue):
                halves = self.split(job)
                if halves is None:
                    continue
                cost = self.cost_of(job) if self.cost_of else 0.0
                if best is None or cost > best[0]:
                    best = (cost, position, index, job, halves)
            if best is None:
                return
            _, position, index, job, (half_a, half_b) = best
            del self._queue[position]
            node = _SplitNode(parent_job=job, parent_key=self._keys[index])
            parent_link = self._half_of.pop(index, None)
            if parent_link is not None:
                # Splitting an already-split half: chain the nodes so the
                # grandparent's payload still assembles bottom-up.
                node.grandparent = parent_link
            inherited = self._excluded.get(index, set())
            for part, half in enumerate((half_a, half_b)):
                half_index = self._admit(half)
                self._half_of[half_index] = (node, part)
                if inherited:
                    self._excluded[half_index] = set(inherited)
                self._queue.append((half_index, half))
            self.steal_count += 1
            METRICS.counter("scheduler.steals").inc()
            TRACER.instant("steal", cat="scheduler",
                           args={"job_id": job.job_id})
            self._emit.append(("steal", job, (half_a, half_b)))

    def _record_half(self, index: int, result: JobResult) -> None:
        """Fold a stolen half's payload toward its parent's cache entry."""
        link = self._half_of.get(index)
        if link is None:
            return
        node, slot = link
        node.done[slot] = True
        node.wall_time_s += result.wall_time_s
        if result.ok:
            node.parts[slot] = result.payload
        else:
            node.failed = True
        if all(node.done):
            self._finish_node(node)

    def _finish_node(self, node: _SplitNode) -> None:
        """A split's halves are all in: rebuild and cache the parent.

        The combined payload is written under the *parent's* cache key, so
        a warm rerun — which shards the original grouping — replays the
        parent no matter how the cold run happened to split it.
        """
        payload = None
        if not node.failed and self.combine is not None:
            try:
                payload = self.combine(node.parent_job, node.parts[0],
                                       node.parts[1])
            except Exception:
                payload = None
        if payload is not None and self.cache is not None \
                and node.parent_key is not None:
            self.cache.put(node.parent_key, payload,
                           wall_time_s=node.wall_time_s)
        if node.grandparent is not None:
            gp_node, gp_slot = node.grandparent
            gp_node.done[gp_slot] = True
            gp_node.wall_time_s += node.wall_time_s
            if payload is not None:
                gp_node.parts[gp_slot] = payload
            else:
                gp_node.failed = True
            if all(gp_node.done):
                self._finish_node(gp_node)

    # -- pool -------------------------------------------------------------
    def _fill(self) -> None:
        """Pull, steal-split and dispatch until the pool is saturated.

        Queued work launches eagerly — a pull can block on the next
        design's parent-side frontend, and already-expanded tasks must be
        checking *during* that compile, not after it.  The one exception
        preserves tail stealing: when the last queued item is splittable
        and launching it would still leave idle slots, the source is
        probed first — if it turns out to be dry, that group is exactly
        the steal candidate the idle slots need, and committing it whole
        to one worker would have forfeited the split.  (Single-property
        tasks are never held back: unsplittable work can't be stolen, so
        probing would only delay it.)
        """
        while True:
            free = self._transport.free_slots()
            if free <= 0:
                # No free slot.  If the transport currently has no
                # capacity AT ALL (a remote pool before its quorum, or
                # after its whole fleet died) still advance the source:
                # cache-hit jobs replay at admission without touching a
                # worker, so a fully-warm rerun must complete with zero
                # agents attached.  A busy-but-nonzero pool stays lazy —
                # the deliberately-tested contract that the stream is
                # pulled only when a slot frees.
                if self._capacity() == 0 and not self._exhausted \
                        and not self._queue:
                    self._pull_one()
                return
            if self._exhausted:
                self._try_steal()
                if not self._queue:
                    # Nothing left to issue but slots are idle: ask the
                    # transport to reclaim prefetched work from busy
                    # workers (steal grants; no-op locally).
                    self._transport.reclaim()
                    return
            elif not self._queue:
                if self._source_blocked:
                    # Temporarily-dry multiplex source: nothing more to
                    # issue this round; the run loop re-probes next time.
                    return
                self._pull_one()
                continue
            elif len(self._queue) == 1 and free > 1 \
                    and self.split is not None \
                    and self.split(self._queue[0][1]) is not None \
                    and not self._source_blocked:
                self._pull_one()
                continue
            launched = False
            for position in range(len(self._queue)):
                index, job = self._queue[position]
                excluded = frozenset(self._excluded.get(index, ()))
                if self._transport.dispatch(index, job, excluded):
                    del self._queue[position]
                    launched = True
                    break
            if not launched:
                # Every queued job is excluded from every free worker
                # (or the transport is gating dispatch, e.g. waiting for
                # its minimum worker count): let step() make progress.
                return

    def _finish(self, index: int, result: JobResult) -> JobResult:
        if result.ok and self.cache is not None \
                and self._keys.get(index) is not None:
            self.cache.put(self._keys[index], result.payload,
                           wall_time_s=result.wall_time_s)
        self._record_half(index, result)
        return result

    def _requeue(self, index: int, job, worker_id: Optional[str]) -> None:
        """Put a transport-returned job back at the head of the queue.

        ``worker_id`` set means its worker died mid-flight: the job is
        excluded from that worker and the requeue is counted/evented.
        ``worker_id`` None is a steal grant — a live worker voluntarily
        relinquished a not-yet-started task at the tail — which re-enters
        the queue silently (the subsequent split emits its own event).

        A job cancelled by :meth:`cancel_where` between dispatch and
        return settles as a ``cancelled`` done event here instead of
        re-entering the queue — the retraction path for a cancelled
        campaign's prefetched tasks.
        """
        if self._is_cancelled(job):
            self._emit.append(("done", index, job,
                               self._cancelled_result(job)))
            return
        self._queue.appendleft((index, job))
        if worker_id is not None:
            self._excluded.setdefault(index, set()).add(worker_id)
            self.requeue_counts[job.job_id] = \
                self.requeue_counts.get(job.job_id, 0) + 1
            METRICS.counter("scheduler.requeues").inc()
            TRACER.instant("requeue", cat="scheduler",
                           args={"job_id": job.job_id,
                                 "worker": worker_id})
            self._emit.append(("requeue", job, worker_id))

    def _should_retry(self, index: int, job, result: JobResult) -> bool:
        """Re-queue a transient failure instead of surfacing it.

        Emits ``("retry", job, attempt, result)`` and returns True when
        the job went back to the queue — the caller must then *not*
        yield a ``done`` event (exactly-one-done is preserved: the
        retried attempt produces it later).  The worker is deliberately
        not excluded — it is alive (its *child* died), and excluding it
        would starve a one-worker fleet.
        """
        if self.retry is None or result.ok or result.from_cache:
            return False
        if self._is_cancelled(job):
            return False
        if classify_failure(result) != "transient":
            return False
        attempt = self._attempts.get(index, 0) + 1
        if attempt > self.retry.max_retries:
            return False
        self._attempts[index] = attempt
        self.retry_counts[job.job_id] = \
            self.retry_counts.get(job.job_id, 0) + 1
        METRICS.counter("scheduler.retries").inc()
        TRACER.instant("retry", cat="scheduler",
                       args={"job_id": job.job_id, "attempt": attempt,
                             "error": result.error})
        self._queue.appendleft((index, job))
        self._emit.append(("retry", job, attempt, result))
        return True

    # -- the run loop ------------------------------------------------------
    def run(self) -> Iterator[tuple]:
        """Execute the source to completion, yielding tagged events.

        The interleaving is deterministic where it matters: after every
        ``done`` event the pool refills (pulling the source — i.e. running
        the next design's frontend — and steal-splitting) *before* the
        next ``done`` is processed, which is what lets an event-order test
        prove compile/check overlap without wall-clock assertions.
        """
        try:
            while True:
                self._source_blocked = False
                self._fill()
                METRICS.gauge("scheduler.queue_depth").set(
                    len(self._queue))
                METRICS.gauge("scheduler.in_flight").set(
                    self._transport.in_flight())
                while self._emit:
                    event = self._emit.popleft()
                    yield event
                    self._fill()
                if not self._transport.in_flight():
                    if not self._queue and self._exhausted:
                        if self._emit:
                            continue
                        break
                    if not self._transport.wait_when_idle:
                        continue
                finished, requeued = self._transport.step()
                for index, job, worker_id in requeued:
                    self._requeue(index, job, worker_id)
                for index, job, result in finished:
                    if self._should_retry(index, job, result):
                        continue
                    yield ("done", index, job, self._finish(index, result))
                    self._fill()
                    while self._emit:
                        event = self._emit.popleft()
                        yield event
                        self._fill()
        finally:
            self._transport.close()


def iter_campaign(jobs: Sequence[CampaignJob],
                  workers: int = 1,
                  cache: Optional[ArtifactCache] = None,
                  timeout_s: Optional[float] = None,
                  memory_limit_mb: Optional[int] = None,
                  runner: Callable[[CampaignJob], Dict[str, object]]
                  = execute_job,
                  transport=None
                  ) -> Iterator[Tuple[int, JobResult]]:
    """Run ``jobs`` on a worker pool, yielding results as they finish.

    The list-shaped shim over :class:`Scheduler`: yields ``(index,
    result)`` pairs in **completion order**, where ``index`` is the job's
    position in the input sequence, so callers can rebuild job order.
    Cached jobs replay without occupying a worker slot.  Abandoning the
    generator terminates any still-running workers.
    """
    scheduler = Scheduler(list(jobs), workers=workers, cache=cache,
                          timeout_s=timeout_s,
                          memory_limit_mb=memory_limit_mb, runner=runner,
                          transport=transport)
    for event in scheduler.run():
        if event[0] == "done":
            _, index, _, result = event
            yield index, result


def run_campaign(jobs: Sequence[CampaignJob],
                 workers: int = 1,
                 cache: Optional[ArtifactCache] = None,
                 timeout_s: Optional[float] = None,
                 memory_limit_mb: Optional[int] = None,
                 runner: Callable[[CampaignJob], Dict[str, object]]
                 = execute_job,
                 progress: Optional[Callable[[JobResult], None]] = None,
                 transport=None
                 ) -> List[JobResult]:
    """Run ``jobs`` on a pool of ``workers`` processes (batch wrapper).

    Returns one :class:`JobResult` per job, **in job order**, regardless of
    worker count or completion order.  ``progress`` (if given) is called
    with each result as it lands, in completion order.  Streaming consumers
    use :func:`iter_campaign` (or :class:`Scheduler`) directly.
    ``transport`` dispatches the same jobs to a remote worker fabric
    instead of local forks (see :mod:`repro.dist`).
    """
    jobs = list(jobs)
    results: List[Optional[JobResult]] = [None] * len(jobs)
    for index, result in iter_campaign(
            jobs, workers=workers, cache=cache, timeout_s=timeout_s,
            memory_limit_mb=memory_limit_mb, runner=runner,
            transport=transport):
        results[index] = result
        if progress:
            progress(result)
    return [result for result in results if result is not None]
