"""The campaign scheduler: a streaming worker pool fed by a job source.

Design points:

* **Parallelism** — each job runs in its own forked worker process; at
  most ``workers`` are alive at once.  Model checking is CPU-bound pure
  Python, so processes (not threads) are the only way to scale past the
  GIL.
* **Streaming input** — :class:`Scheduler` consumes an *iterator* of
  jobs, pulling the next one only when a worker slot frees up.  A source
  that does expensive parent-side work per job (the property-sharding
  frontend: FT generation + compile) therefore overlaps that work with
  the checking of already-issued jobs.  A plain list works too
  (:func:`iter_campaign` is the list-shaped shim); a socket feeding a
  remote queue is the same shape, which is what the distributed-transport
  roadmap item needs.
* **Event-driven waiting** — the pool blocks in
  :func:`multiprocessing.connection.wait` on the worker pipes instead of
  polling each one on a fixed interval.  The wait timeout is bounded by
  the nearest per-job deadline, so wall-clock limits fire within
  :data:`_DEADLINE_SLACK_S` of expiry instead of a poll period later.
* **Work stealing** — when the source is exhausted and more worker slots
  are free than jobs are queued, the scheduler asks ``split`` to re-split
  the costliest queued job and issues the halves, keeping the tail of a
  campaign parallel.  ``combine`` folds the halves' payloads back into
  the parent's shape so the artifact cache still receives one entry per
  *original* job (a warm rerun replays it no matter how the cold run was
  split).
* **Per-job bounds** — a wall-clock deadline per job (the parent
  terminates overdue workers) and an address-space cap applied with
  ``resource.setrlimit`` inside the worker, mirroring the execution-scope
  resource bounding of the reference orchestrators.
* **Deterministic results** — ``run_campaign`` returns results in job
  order; worker count, schedule and stealing can only change wall time
  and task *grouping*, never the per-property verdicts downstream
  consumers aggregate.
* **Failure isolation** — a job that raises, exhausts memory, dies, or
  times out yields a per-job ``error``/``timeout`` result; the campaign
  always runs to completion.
* **Incremental reruns** — with an :class:`~repro.campaign.cache.ArtifactCache`
  attached, jobs whose content hash is cached replay instantly and never
  reach a worker.  Cache entries remember the original check wall time,
  which replayed results surface as ``original_wall_time_s``.

The scheduler is unit-agnostic: a "job" is anything picklable with a
``job_id`` attribute that ``runner`` can execute — a whole-design
:class:`~repro.campaign.jobs.CampaignJob` (the default) or a per-property
:class:`~repro.api.task.PropertyTask`.  A source may also yield
:class:`SourceNotice` markers (compile progress from the sharding
frontend); they pass through the event stream untouched.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import (Callable, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple)

from .cache import ArtifactCache
from .jobs import CampaignJob, execute_job

__all__ = ["JobResult", "Scheduler", "SourceNotice", "iter_campaign",
           "run_campaign"]

#: Upper bound on how long a worker's deadline may overshoot: the pool
#: never sleeps past the earliest deadline, and never longer than this
#: between bookkeeping rounds even without deadlines.
_DEADLINE_SLACK_S = 0.05
_IDLE_WAIT_S = 1.0


@dataclass
class JobResult:
    """Outcome of one campaign job.

    ``status`` is ``"ok"`` (payload carries the engine summary),
    ``"error"`` (the job raised / crashed / hit the memory cap; ``error``
    carries the reason) or ``"timeout"``.  ``payload`` is plain JSON-able
    data in all cases (possibly None), so results cross process and disk
    boundaries unchanged.  A cache replay sets ``from_cache`` and carries
    the *original* check wall time in ``original_wall_time_s``
    (``wall_time_s`` is then the replay time, effectively zero).
    """

    job_id: str
    status: str
    payload: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    wall_time_s: float = 0.0
    from_cache: bool = False
    original_wall_time_s: Optional[float] = None
    #: Number of times this job's work was re-split by work stealing
    #: (only set on merged per-design results, see the campaign layer).
    steals: int = 0

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass(frozen=True)
class SourceNotice:
    """A pass-through marker a job source may emit between jobs.

    The sharding frontend uses these to surface ``compile_started`` /
    ``compile_done`` progress into the session's event stream; the
    scheduler forwards them in-order and otherwise ignores them.
    """

    kind: str                 # "compile_started" | "compile_done"
    design: str
    wall_time_s: float = 0.0
    from_cache: bool = False


def _child_main(conn, runner, job, memory_limit_mb) -> None:
    """Worker entry point: run one job, ship one (status, payload, error)."""
    try:
        if memory_limit_mb:
            limit = int(memory_limit_mb) * 1024 * 1024
            try:
                import resource
                resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
            except (ImportError, ValueError, OSError):
                pass  # unsupported platform: run unbounded
        payload = runner(job)
        conn.send(("ok", payload, None))
    except MemoryError:
        conn.send(("error", None,
                   f"memory limit ({memory_limit_mb} MB) exceeded"))
    except BaseException:
        try:
            conn.send(("error", None, traceback.format_exc(limit=10)))
        except Exception:
            pass
    finally:
        conn.close()


@dataclass
class _Running:
    index: int
    job: object
    process: multiprocessing.Process
    conn: object
    started: float
    deadline: Optional[float]


@dataclass
class _SplitNode:
    """Book-keeping for one work-stealing split: parent = half_0 + half_1."""

    parent_job: object
    parent_key: Optional[str]
    parts: List[Optional[Dict[str, object]]] = field(
        default_factory=lambda: [None, None])
    done: List[bool] = field(default_factory=lambda: [False, False])
    failed: bool = False
    wall_time_s: float = 0.0
    #: Set when the split parent was itself a stolen half: (node, slot).
    grandparent: Optional[Tuple["_SplitNode", int]] = None


class Scheduler:
    """Streams jobs from ``source`` onto a bounded forked worker pool.

    :meth:`run` yields tagged events in a deterministic interleaving:

    * ``("done", index, job, result)`` — a job finished (or replayed from
      cache); ``index`` is the job's admission order.
    * ``("notice", notice)`` — a :class:`SourceNotice` the source emitted.
    * ``("steal", parent_job, (half_a, half_b))`` — a queued job was
      re-split to feed idle workers.

    Exactly one ``done`` event is emitted per admitted job, except jobs
    consumed by a steal — their verdicts arrive through the halves'
    ``done`` events instead.
    """

    def __init__(self, source: Iterable,
                 workers: int = 1,
                 cache: Optional[ArtifactCache] = None,
                 timeout_s: Optional[float] = None,
                 memory_limit_mb: Optional[int] = None,
                 runner: Callable = execute_job,
                 split: Optional[Callable] = None,
                 combine: Optional[Callable] = None,
                 cost_of: Optional[Callable] = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive (None = unbounded)")
        if memory_limit_mb is not None and memory_limit_mb <= 0:
            raise ValueError(
                "memory_limit_mb must be positive (None = unbounded)")
        self._source = iter(source)
        self.workers = workers
        self.cache = cache
        self.timeout_s = timeout_s
        self.memory_limit_mb = memory_limit_mb
        self.runner = runner
        self.split = split
        self.combine = combine
        self.cost_of = cost_of
        #: Jobs re-split by work stealing during the run.
        self.steal_count = 0

        # Fork is load-bearing, not just the Linux default: workers must
        # inherit the parent's populated COMPILE_CACHE for the one-compile-
        # per-design guarantee of property sharding.  On platforms without
        # fork (Windows) fall back to the default context — correctness
        # holds (workers recompile), only the sharing is lost.
        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError:
            self._context = multiprocessing.get_context()

        self._queue: deque = deque()      # (index, job)
        self._running: List[_Running] = []
        self._emit: deque = deque()       # buffered out-of-band events
        self._keys: Dict[int, Optional[str]] = {}
        self._next_index = 0
        self._exhausted = False
        # job admission index -> (split node, part slot) for stolen halves.
        self._half_of: Dict[int, Tuple[_SplitNode, int]] = {}

    # -- source -----------------------------------------------------------
    def _admit(self, job) -> int:
        index = self._next_index
        self._next_index += 1
        if self.cache is not None:
            try:
                self._keys[index] = self.cache.key(job)
            except Exception:
                self._keys[index] = None  # unloadable source: worker reports
        else:
            self._keys[index] = None
        return index

    def _pull_one(self) -> None:
        """Advance the source until one runnable job is queued.

        Notices pass through to the emit buffer; cache-hit jobs replay as
        immediate ``done`` events and never occupy a worker slot.
        """
        while not self._exhausted:
            try:
                item = next(self._source)
            except StopIteration:
                self._exhausted = True
                return
            if isinstance(item, SourceNotice):
                self._emit.append(("notice", item))
                continue
            index = self._admit(item)
            key = self._keys[index]
            if key is not None:
                entry = self.cache.get_entry(key)
                if entry is not None:
                    self._emit.append(("done", index, item, JobResult(
                        job_id=item.job_id, status="ok",
                        payload=entry.payload, wall_time_s=0.0,
                        from_cache=True,
                        original_wall_time_s=entry.wall_time_s)))
                    continue
            self._queue.append((index, item))
            return

    # -- work stealing ----------------------------------------------------
    def _try_steal(self) -> None:
        """Re-split queued jobs while idle workers outnumber them.

        Splits the costliest splittable queued job first (``cost_of``
        ranks them; admission order breaks ties), so the halves that get
        reissued are the ones most likely to still dominate the tail.
        """
        if self.split is None:
            return
        while len(self._queue) < self.workers - len(self._running):
            best = None
            for position, (index, job) in enumerate(self._queue):
                halves = self.split(job)
                if halves is None:
                    continue
                cost = self.cost_of(job) if self.cost_of else 0.0
                if best is None or cost > best[0]:
                    best = (cost, position, index, job, halves)
            if best is None:
                return
            _, position, index, job, (half_a, half_b) = best
            del self._queue[position]
            node = _SplitNode(parent_job=job, parent_key=self._keys[index])
            parent_link = self._half_of.pop(index, None)
            if parent_link is not None:
                # Splitting an already-split half: chain the nodes so the
                # grandparent's payload still assembles bottom-up.
                node.grandparent = parent_link
            for part, half in enumerate((half_a, half_b)):
                half_index = self._admit(half)
                self._half_of[half_index] = (node, part)
                self._queue.append((half_index, half))
            self.steal_count += 1
            self._emit.append(("steal", job, (half_a, half_b)))

    def _record_half(self, index: int, result: JobResult) -> None:
        """Fold a stolen half's payload toward its parent's cache entry."""
        link = self._half_of.get(index)
        if link is None:
            return
        node, slot = link
        node.done[slot] = True
        node.wall_time_s += result.wall_time_s
        if result.ok:
            node.parts[slot] = result.payload
        else:
            node.failed = True
        if all(node.done):
            self._finish_node(node)

    def _finish_node(self, node: _SplitNode) -> None:
        """A split's halves are all in: rebuild and cache the parent.

        The combined payload is written under the *parent's* cache key, so
        a warm rerun — which shards the original grouping — replays the
        parent no matter how the cold run happened to split it.
        """
        payload = None
        if not node.failed and self.combine is not None:
            try:
                payload = self.combine(node.parent_job, node.parts[0],
                                       node.parts[1])
            except Exception:
                payload = None
        if payload is not None and self.cache is not None \
                and node.parent_key is not None:
            self.cache.put(node.parent_key, payload,
                           wall_time_s=node.wall_time_s)
        if node.grandparent is not None:
            gp_node, gp_slot = node.grandparent
            gp_node.done[gp_slot] = True
            gp_node.wall_time_s += node.wall_time_s
            if payload is not None:
                gp_node.parts[gp_slot] = payload
            else:
                gp_node.failed = True
            if all(gp_node.done):
                self._finish_node(gp_node)

    # -- pool -------------------------------------------------------------
    def _launch(self, index: int, job) -> None:
        parent_conn, child_conn = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_child_main,
            args=(child_conn, self.runner, job, self.memory_limit_mb))
        process.start()
        child_conn.close()
        now = time.monotonic()
        self._running.append(_Running(
            index=index, job=job, process=process, conn=parent_conn,
            started=now,
            deadline=(now + self.timeout_s) if self.timeout_s is not None
            else None))

    def _fill(self) -> None:
        """Pull, steal-split and launch until the pool is saturated.

        Queued work launches eagerly — a pull can block on the next
        design's parent-side frontend, and already-expanded tasks must be
        checking *during* that compile, not after it.  The one exception
        preserves tail stealing: when the last queued item is splittable
        and launching it would still leave idle slots, the source is
        probed first — if it turns out to be dry, that group is exactly
        the steal candidate the idle slots need, and committing it whole
        to one worker would have forfeited the split.  (Single-property
        tasks are never held back: unsplittable work can't be stolen, so
        probing would only delay it.)
        """
        while len(self._running) < self.workers:
            free = self.workers - len(self._running)
            if self._exhausted:
                self._try_steal()
                if not self._queue:
                    break
            elif not self._queue:
                self._pull_one()
                continue
            elif len(self._queue) == 1 and free > 1 \
                    and self.split is not None \
                    and self.split(self._queue[0][1]) is not None:
                self._pull_one()
                continue
            index, job = self._queue.popleft()
            self._launch(index, job)

    def _wait_timeout(self) -> Optional[float]:
        """How long the pool may block without missing a deadline.

        Never longer than the time to the earliest running deadline (so
        wall-clock limits fire within ``_DEADLINE_SLACK_S`` of expiry —
        the wait wakes *at* the deadline and termination follows
        immediately), and never longer than ``_IDLE_WAIT_S``.
        """
        deadlines = [slot.deadline for slot in self._running
                     if slot.deadline is not None]
        if not deadlines:
            return _IDLE_WAIT_S
        return min(max(0.0, min(deadlines) - time.monotonic()),
                   _IDLE_WAIT_S)

    def _finish(self, slot: _Running, result: JobResult) -> JobResult:
        result.wall_time_s = time.monotonic() - slot.started
        if result.ok and self.cache is not None \
                and self._keys.get(slot.index) is not None:
            self.cache.put(self._keys[slot.index], result.payload,
                           wall_time_s=result.wall_time_s)
        self._record_half(slot.index, result)
        return result

    def _reap(self) -> List[Tuple[_Running, JobResult]]:
        """Collect every finished/expired worker (may be empty)."""
        ready = set(mp_connection.wait(
            [slot.conn for slot in self._running],
            timeout=self._wait_timeout()))
        finished: List[Tuple[_Running, JobResult]] = []
        still: List[_Running] = []
        now = time.monotonic()
        for slot in self._running:
            if slot.conn in ready:
                # Readiness means either a result message or EOF (the
                # worker died — crash, hard OOM kill — closing the pipe).
                try:
                    status, payload, error = slot.conn.recv()
                    slot.process.join()
                except EOFError:
                    slot.process.join()
                    status, payload, error = (
                        "error", None,
                        f"worker died with exit code "
                        f"{slot.process.exitcode}")
                slot.conn.close()
                finished.append((slot, JobResult(
                    job_id=slot.job.job_id, status=status,
                    payload=payload, error=error)))
                continue
            if slot.deadline is not None and now > slot.deadline:
                # A result that landed since the wait returned wins over
                # the deadline — don't discard completed work.
                if slot.conn.poll(0):
                    still.append(slot)
                    continue
                slot.process.terminate()
                slot.process.join()
                slot.conn.close()
                finished.append((slot, JobResult(
                    job_id=slot.job.job_id, status="timeout",
                    error=f"wall-clock limit ({self.timeout_s:.1f}s) "
                          f"exceeded")))
                continue
            still.append(slot)
        self._running = still
        return finished

    # -- the run loop ------------------------------------------------------
    def run(self) -> Iterator[tuple]:
        """Execute the source to completion, yielding tagged events.

        The interleaving is deterministic where it matters: after every
        ``done`` event the pool refills (pulling the source — i.e. running
        the next design's frontend — and steal-splitting) *before* the
        next ``done`` is processed, which is what lets an event-order test
        prove compile/check overlap without wall-clock assertions.
        """
        try:
            while True:
                self._fill()
                while self._emit:
                    event = self._emit.popleft()
                    yield event
                    self._fill()
                if not self._running:
                    if self._queue or not self._exhausted:
                        continue
                    if self._emit:
                        continue
                    break
                for slot, result in self._reap():
                    yield ("done", slot.index, slot.job,
                           self._finish(slot, result))
                    self._fill()
                    while self._emit:
                        event = self._emit.popleft()
                        yield event
                        self._fill()
        finally:
            for slot in self._running:  # interrupted/abandoned: no orphans
                slot.process.terminate()
                slot.process.join()


def iter_campaign(jobs: Sequence[CampaignJob],
                  workers: int = 1,
                  cache: Optional[ArtifactCache] = None,
                  timeout_s: Optional[float] = None,
                  memory_limit_mb: Optional[int] = None,
                  runner: Callable[[CampaignJob], Dict[str, object]]
                  = execute_job
                  ) -> Iterator[Tuple[int, JobResult]]:
    """Run ``jobs`` on a worker pool, yielding results as they finish.

    The list-shaped shim over :class:`Scheduler`: yields ``(index,
    result)`` pairs in **completion order**, where ``index`` is the job's
    position in the input sequence, so callers can rebuild job order.
    Cached jobs replay without occupying a worker slot.  Abandoning the
    generator terminates any still-running workers.
    """
    scheduler = Scheduler(list(jobs), workers=workers, cache=cache,
                          timeout_s=timeout_s,
                          memory_limit_mb=memory_limit_mb, runner=runner)
    for event in scheduler.run():
        if event[0] == "done":
            _, index, _, result = event
            yield index, result


def run_campaign(jobs: Sequence[CampaignJob],
                 workers: int = 1,
                 cache: Optional[ArtifactCache] = None,
                 timeout_s: Optional[float] = None,
                 memory_limit_mb: Optional[int] = None,
                 runner: Callable[[CampaignJob], Dict[str, object]]
                 = execute_job,
                 progress: Optional[Callable[[JobResult], None]] = None
                 ) -> List[JobResult]:
    """Run ``jobs`` on a pool of ``workers`` processes (batch wrapper).

    Returns one :class:`JobResult` per job, **in job order**, regardless of
    worker count or completion order.  ``progress`` (if given) is called
    with each result as it lands, in completion order.  Streaming consumers
    use :func:`iter_campaign` (or :class:`Scheduler`) directly.
    """
    jobs = list(jobs)
    results: List[Optional[JobResult]] = [None] * len(jobs)
    for index, result in iter_campaign(
            jobs, workers=workers, cache=cache, timeout_s=timeout_s,
            memory_limit_mb=memory_limit_mb, runner=runner):
        results[index] = result
        if progress:
            progress(result)
    return [result for result in results if result is not None]
