"""Property-granularity campaigns: shard design jobs into property tasks.

The whole-design :class:`~repro.campaign.jobs.CampaignJob` is the wrong
scheduling unit when one design dominates the critical path (the A4/O2
jobs in the corpus): a 4-worker pool idles while one worker grinds through
a big property set.  This module re-expresses a design-granularity job
list at per-property granularity on top of :mod:`repro.api`:

* :func:`shard_jobs` — generate each job's formal testbench, compile the
  design **once** (parent-side, through the shared compile cache) and
  unfold its property inventory into :class:`~repro.api.task.PropertyTask`
  groups;
* :func:`merge_shard_results` — fold the per-task results back into one
  :class:`~repro.campaign.scheduler.JobResult` per original job, with a
  payload identical in shape *and verdicts* to what
  :func:`~repro.campaign.jobs.execute_job` produces — reports, caches and
  expectation checks downstream cannot tell the difference;
* :func:`run_property_campaign` — the drop-in driver the CLI's
  ``--granularity property`` mode uses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

# NOTE: repro.api.session imports this package's scheduler; to keep both
# import orders working (api first or campaign first), the session-layer
# imports below happen inside the functions that need them.
from ..api.task import PropertyTask, TaskEvent, expand_tasks
from ..formal.engine import CheckReport
from .cache import ArtifactCache
from .jobs import CampaignJob, summarize_report
from .scheduler import JobResult

__all__ = ["ShardPlan", "shard_jobs", "merge_shard_results",
           "run_property_campaign"]


@dataclass
class _JobShard:
    """Book-keeping for one sharded design job."""

    job: CampaignJob
    task_ids: List[str] = field(default_factory=list)
    annotation_loc: int = 0
    property_count: int = 0
    expand_error: Optional[str] = None   # FT/compile failed parent-side


@dataclass
class ShardPlan:
    """The task list for a property-granularity campaign run."""

    shards: List[_JobShard]
    tasks: List[PropertyTask]

    @property
    def jobs(self) -> List[CampaignJob]:
        return [shard.job for shard in self.shards]


def shard_jobs(jobs: Sequence[CampaignJob],
               group_size: int = 1) -> ShardPlan:
    """Unfold design jobs into per-property tasks (one compile per job).

    A job whose sources fail to load, annotate or compile is recorded on
    the plan with ``expand_error`` and produces no tasks — the merge step
    turns it into a per-job ``error`` result, preserving the campaign's
    failure-isolation contract.
    """
    from ..core import generate_ft

    shards: List[_JobShard] = []
    tasks: List[PropertyTask] = []
    for job in jobs:
        shard = _JobShard(job=job)
        shards.append(shard)
        try:
            sources = job.sources()
            ft = generate_ft(sources[0], module_name=job.dut_module)
            merged = "\n".join(sources + ft.testbench_sources())
            job_tasks = expand_tasks(
                [merged], job.dut_module, job.engine_config,
                design=job.job_id, variant=job.variant,
                group_size=group_size)
        except Exception as exc:
            shard.expand_error = f"{type(exc).__name__}: {exc}"
            continue
        shard.annotation_loc = ft.annotation_loc
        shard.property_count = ft.property_count
        shard.task_ids = [task.task_id for task in job_tasks]
        tasks.extend(job_tasks)
    return ShardPlan(shards=shards, tasks=tasks)


def _merge_one(shard: _JobShard,
               events: Dict[str, TaskEvent],
               report: Optional[CheckReport]) -> JobResult:
    job = shard.job
    if shard.expand_error is not None:
        return JobResult(job_id=job.job_id, status="error",
                         error=f"testbench generation/compile failed: "
                               f"{shard.expand_error}")
    own = [events[task_id] for task_id in shard.task_ids
           if task_id in events]
    bad = [event for event in own if not event.ok]
    wall = sum(event.wall_time_s for event in own)
    if bad or len(own) != len(shard.task_ids):
        status = bad[0].status if bad else "error"
        details = "; ".join(
            f"{event.task_id} [{event.status}] "
            f"{(event.error or '').strip().splitlines()[-1] if event.error else ''}"
            for event in bad) or "missing task results"
        return JobResult(job_id=job.job_id, status=status,
                         error=f"{len(bad)}/{len(shard.task_ids)} property "
                               f"task(s) failed: {details}",
                         wall_time_s=wall)
    if report is None:  # degenerate: a design with zero properties
        report = CheckReport(design=job.dut_module)
    payload = summarize_report(report)
    payload["annotation_loc"] = shard.annotation_loc
    payload["property_count"] = shard.property_count
    payload["engine_time_s"] = sum(event.engine_time_s for event in own)
    return JobResult(job_id=job.job_id, status="ok", payload=payload,
                     wall_time_s=wall,
                     from_cache=bool(own) and all(event.from_cache
                                                  for event in own))


def merge_shard_results(plan: ShardPlan,
                        events: Sequence[TaskEvent]) -> List[JobResult]:
    """One :class:`JobResult` per original job, in job order.

    Payloads match :func:`~repro.campaign.jobs.execute_job` field for
    field; a job with any failed shard degrades to a per-job error result
    (never a silently partial report).
    """
    from ..api.session import aggregate_reports

    by_id = {event.task_id: event for event in events}
    reports = aggregate_reports(plan.tasks, events)
    return [_merge_one(shard, by_id, reports.get(shard.job.job_id))
            for shard in plan.shards]


def run_property_campaign(jobs: Sequence[CampaignJob],
                          workers: int = 1,
                          group_size: int = 1,
                          cache: Optional[ArtifactCache] = None,
                          timeout_s: Optional[float] = None,
                          memory_limit_mb: Optional[int] = None,
                          progress: Optional[Callable[[TaskEvent], None]]
                          = None) -> List[JobResult]:
    """Run a campaign at property granularity; results stay job-shaped.

    The compile counter contract: every design × variant is compiled
    exactly once, in this (parent) process, during sharding — check
    ``repro.api.COMPILE_CACHE.stats()`` before/after to assert it.
    Workers forked by the session inherit those compiles and report
    ``compiled_in_worker=False``.
    """
    from ..api.session import VerificationSession

    plan = shard_jobs(jobs, group_size=group_size)
    session = VerificationSession(
        plan.tasks, workers=workers, cache=cache, timeout_s=timeout_s,
        memory_limit_mb=memory_limit_mb,
        precompile=False)  # shard_jobs already compiled everything
    for event in session.run():
        if progress:
            progress(event)
    return merge_shard_results(plan, session.events)
