"""Property-granularity campaigns: shard design jobs into property tasks.

The whole-design :class:`~repro.campaign.jobs.CampaignJob` is the wrong
scheduling unit when one design dominates the critical path (the A4/O2
jobs in the corpus): a 4-worker pool idles while one worker grinds through
a big property set.  This module re-expresses a design-granularity job
list at per-property granularity on top of :mod:`repro.api`:

* :func:`stream_tasks` — the **streaming frontend**: a generator that,
  per design, runs FT generation + one compile (through the shared
  compile cache) and yields that design's
  :class:`~repro.api.task.PropertyTask` groups, bracketed by
  ``compile_started``/``compile_done``
  :class:`~repro.campaign.scheduler.SourceNotice` markers.  Fed straight
  into the scheduler, design B's frontend runs while design A's tasks
  are still being checked — no all-designs-compile-first phase;
* :func:`shard_jobs` — the batch wrapper that drains the stream into a
  :class:`ShardPlan` up front (the pre-pipeline shape, kept for plan
  inspection and tests);
* :func:`merge_shard_results` — fold the per-task results back into one
  :class:`~repro.campaign.scheduler.JobResult` per original job, with a
  payload identical in shape *and verdicts* to what
  :func:`~repro.campaign.jobs.execute_job` produces — reports, caches and
  expectation checks downstream cannot tell the difference.  The merge
  keys on the design label and the property-name union, so it tolerates
  *any* grouping: inventory chunks, LPT cost bins, work-stolen halves;
* :func:`run_property_campaign` — the drop-in driver the CLI's
  ``--granularity property`` mode uses, wiring stream → session → merge.

Scheduling (``schedule=``):

* ``"inventory"`` — groups are contiguous ``group_size`` chunks of the
  property inventory, issued in declaration order (the pre-cost-model
  behavior, kept as the equivalence baseline);
* ``"cost"`` (the default) — properties are priced by the
  :class:`~repro.campaign.costmodel.CostModel` (kind × COI size × engine
  bounds) and packed into balanced bins with LPT, issued costliest
  first; the scheduler may additionally re-split pending groups when
  workers idle (work stealing).  Verdicts are identical either way —
  only wall time and task grouping change.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from math import ceil
from typing import (Callable, Dict, Iterator, List, Optional, Sequence,
                    Set, Tuple)

# NOTE: repro.api.session imports this package's scheduler; to keep both
# import orders working (api first or campaign first), the session-layer
# imports below happen inside the functions that need them.
from ..api.task import PropertyTask, TaskEvent, build_tasks
from ..formal.engine import CheckReport
from ..obs import TRACER
from .cache import ArtifactCache
from .costmodel import CostModel, pack_lpt
from .jobs import CampaignJob, summarize_report
from .scheduler import JobResult, SourceNotice

__all__ = ["ShardPlan", "shard_jobs", "stream_tasks", "merge_shard_results",
           "run_property_campaign"]

_SCHEDULES = ("inventory", "cost")


@dataclass
class _JobShard:
    """Book-keeping for one sharded design job."""

    job: CampaignJob
    task_ids: List[str] = field(default_factory=list)
    tasks: List[PropertyTask] = field(default_factory=list)
    annotation_loc: int = 0
    property_count: int = 0
    expand_error: Optional[str] = None   # FT/compile failed parent-side
    #: True when the shard was restored from a cached plan — FT generation
    #: and the parent-side compile were both skipped.
    from_plan_cache: bool = False
    #: Parent-side frontend wall time (FT generation + compile + grouping).
    compile_time_s: float = 0.0

    @property
    def all_properties(self) -> Set[str]:
        return {name for task in self.tasks for name in task.properties}


@dataclass
class ShardPlan:
    """The task list for a property-granularity campaign run."""

    shards: List[_JobShard] = field(default_factory=list)
    tasks: List[PropertyTask] = field(default_factory=list)

    @property
    def jobs(self) -> List[CampaignJob]:
        return [shard.job for shard in self.shards]


#: Bump to invalidate every cached shard plan (schema/semantics change).
#: (2: entries grew per-property scheduling metadata and schedule-aware
#: keys.)
_PLAN_SCHEMA = 2


def _plan_key(job: CampaignJob, group_size: int,
              schedule: str = "inventory",
              model: Optional[CostModel] = None) -> str:
    """Content hash of everything that determines a job's shard plan.

    Deliberately its own key space (the ``shard-plan`` tag) next to job-
    and task-result entries in the same artifact cache directory.  The
    schedule — and, for cost scheduling, the model weights — are part of
    the key because they determine the *grouping*; a recalibrated model
    must re-plan, not replay a stale grouping.
    """
    from ..api.compile import config_fingerprint, hash_chunks

    pairs = [("shard-plan", str(_PLAN_SCHEMA)),
             ("group-size", str(group_size)),
             ("schedule", schedule)]
    if schedule == "cost":
        pairs.append(("cost-model", (model or CostModel()).fingerprint()))
    pairs.extend(job.cache_chunks())
    pairs.append(("config", config_fingerprint(job.engine_config)))
    return hash_chunks(pairs)


def _property_meta(compiled) -> Dict[str, Tuple[str, int, int]]:
    """name → (kind, COI latch count, inventory position) for a design.

    COI sizes come from the exact closure the engine itself prunes with,
    so the cost model prices the solver work a property will actually
    cause, not the design's total state.
    """
    from ..formal.coi import coi_latches

    base = compiled.base
    by_name = {prop.name: prop
               for group in (base.asserts, base.covers, base.liveness)
               for prop in group}
    meta: Dict[str, Tuple[str, int, int]] = {}
    for position, (name, kind) in enumerate(compiled.inventory):
        prop = by_name.get(name)
        size = 0
        if prop is not None:
            try:
                size = len(coi_latches(base, [prop.lit],
                                       include_fairness=(kind == "live")))
            except Exception:
                size = 0
        meta[name] = (kind, size, position)
    return meta


def _grouped(names: Sequence[str], meta: Dict[str, Tuple[str, int, int]],
             group_size: int, schedule: str, model: CostModel,
             config) -> List[Tuple[str, ...]]:
    """Split a design's inventory into task-sized property groups."""
    if schedule == "inventory":
        from ..api.task import group_properties
        return group_properties(names, group_size)
    bins = max(1, ceil(len(names) / group_size))
    costs = [model.property_cost(meta[name][0], meta[name][1],
                                 config.max_bound, config.max_frames)
             for name in names]
    return [tuple(names[index] for index in indices)
            for indices in pack_lpt(costs, bins)]


def _restore_shard(shard: _JobShard, entry: dict) -> List[PropertyTask]:
    """Rebuild a shard's task list from a cached plan entry.

    Reconstructs exactly what the fresh expansion would have produced —
    same task ids, same groups, same merged source, same scheduling
    metadata — but without running the RTL frontend or the compiler
    (both paths go through the shared
    :func:`~repro.api.task.build_tasks`, so the schemes cannot drift).
    """
    job = shard.job
    merged = entry["merged"]
    meta = {name: (str(kind), int(coi), int(order))
            for name, (kind, coi, order) in entry["meta"].items()}
    tasks = build_tasks(job.job_id, job.dut_module, (merged,),
                        job.engine_config,
                        [tuple(group) for group in entry["groups"]],
                        variant=job.variant,
                        defines=tuple(entry.get("defines", ())),
                        meta=meta)
    shard.annotation_loc = int(entry["annotation_loc"])
    shard.property_count = int(entry["property_count"])
    shard.task_ids = [task.task_id for task in tasks]
    shard.tasks = tasks
    shard.from_plan_cache = True
    return tasks


def _expand_shard(job: CampaignJob, group_size: int,
                  cache: Optional[ArtifactCache], schedule: str,
                  model: CostModel) -> _JobShard:
    """Produce one design's shard: plan-cache restore or fresh frontend.

    A job whose sources fail to load, annotate or compile is recorded
    with ``expand_error`` and produces no tasks — the merge step turns it
    into a per-job ``error`` result, preserving the campaign's
    failure-isolation contract.

    A restored shard skipped its parent-side compile; if any of its task
    results is missing from the artifact cache, a worker would otherwise
    recompile per task — so those (and only those) designs are compiled
    here, from the cached merged source, preserving the one-compile
    guarantee.
    """
    from ..api.compile import compile_design
    from ..core import generate_ft

    begin = time.perf_counter()
    shard = _JobShard(job=job)
    plan_key = _plan_key(job, group_size, schedule, model) \
        if cache is not None else None
    if plan_key is not None:
        entry = cache.get(plan_key)
        if entry is not None:
            try:
                _restore_shard(shard, entry)
            except (KeyError, TypeError, ValueError):
                # Malformed/stale entry: fall through to a fresh plan.
                shard.from_plan_cache = False
                shard.tasks = []
                shard.task_ids = []
        if shard.from_plan_cache:
            if shard.tasks and not all(
                    cache.contains(cache.key(task))
                    for task in shard.tasks):
                try:
                    compile_design(list(shard.tasks[0].sources),
                                   job.dut_module,
                                   shard.tasks[0].defines)
                except Exception:
                    # Workers will fail the same way, per task, preserving
                    # the failure-isolation contract.
                    pass
            shard.compile_time_s = time.perf_counter() - begin
            return shard
    try:
        sources = job.sources()
        ft = generate_ft(sources[0], module_name=job.dut_module)
        merged = "\n".join(sources + ft.testbench_sources())
        compiled = compile_design((merged,), job.dut_module)
        meta = _property_meta(compiled)
        names = compiled.property_names()
        groups = _grouped(names, meta, group_size, schedule, model,
                          job.engine_config)
        tasks = build_tasks(job.job_id, job.dut_module, (merged,),
                            job.engine_config, groups,
                            variant=job.variant, meta=meta)
    except Exception as exc:
        shard.expand_error = f"{type(exc).__name__}: {exc}"
        shard.compile_time_s = time.perf_counter() - begin
        return shard
    shard.annotation_loc = ft.annotation_loc
    shard.property_count = ft.property_count
    shard.task_ids = [task.task_id for task in tasks]
    shard.tasks = tasks
    shard.compile_time_s = time.perf_counter() - begin
    if plan_key is not None:
        cache.put(plan_key, {
            "merged": merged,
            "groups": [list(task.properties) for task in tasks],
            "defines": (list(tasks[0].defines) if tasks else []),
            "meta": {name: list(value) for name, value in meta.items()},
            "annotation_loc": ft.annotation_loc,
            "property_count": ft.property_count,
        })
    return shard


def stream_tasks(jobs: Sequence[CampaignJob],
                 group_size: int = 1,
                 cache: Optional[ArtifactCache] = None,
                 schedule: str = "cost",
                 model: Optional[CostModel] = None,
                 plan: Optional[ShardPlan] = None
                 ) -> Iterator[object]:
    """The streaming frontend: yield each design's tasks as they land.

    Yields, per design: a ``compile_started`` notice, then (after FT
    generation + the one parent-side compile) a ``compile_done`` notice
    and the design's tasks.  Because the scheduler pulls this generator
    only when worker slots free up, design *B*'s frontend work happens
    while design *A*'s tasks are still being checked — the
    plan-everything-then-run phase is gone.

    ``plan`` (optional) is filled in as shards land, so the caller holds
    the complete :class:`ShardPlan` once the stream (and the session
    consuming it) is drained.
    """
    if schedule not in _SCHEDULES:
        raise ValueError(f"unknown schedule {schedule!r}; "
                         f"expected one of {_SCHEDULES}")
    model = model or CostModel()
    for job in jobs:
        yield SourceNotice(kind="compile_started", design=job.job_id)
        with TRACER.span("frontend", cat="frontend",
                         args={"design": job.job_id}):
            shard = _expand_shard(job, group_size, cache, schedule, model)
        if plan is not None:
            plan.shards.append(shard)
            plan.tasks.extend(shard.tasks)
        yield SourceNotice(kind="compile_done", design=job.job_id,
                           wall_time_s=shard.compile_time_s,
                           from_cache=shard.from_plan_cache)
        for task in shard.tasks:
            yield task


def shard_jobs(jobs: Sequence[CampaignJob],
               group_size: int = 1,
               cache: Optional[ArtifactCache] = None,
               schedule: str = "inventory",
               model: Optional[CostModel] = None) -> ShardPlan:
    """Unfold design jobs into per-property tasks (one compile per job).

    The batch wrapper over :func:`stream_tasks`: every design's frontend
    runs up front and the whole plan is returned.  Campaign execution
    goes through the stream instead (see :func:`run_property_campaign`);
    this shape remains for plan inspection, callers that need the task
    list before scheduling, and the pre-pipeline tests.

    With a ``cache``, each job's *shard plan* (testbench-merged source +
    property grouping + scheduling metadata) is itself content-cached: a
    warm rerun rebuilds its task list from disk and skips FT generation
    and the parent-side compile entirely, which is what makes a
    fully-warm ``--granularity property --cache-dir`` rerun as instant
    as a design-granularity one.
    """
    plan = ShardPlan()
    for _ in stream_tasks(jobs, group_size=group_size, cache=cache,
                          schedule=schedule, model=model, plan=plan):
        pass
    return plan


def _merge_one(shard: _JobShard,
               events: Sequence[TaskEvent],
               report: Optional[CheckReport],
               steals: int = 0) -> JobResult:
    job = shard.job
    if shard.expand_error is not None:
        return JobResult(job_id=job.job_id, status="error",
                         error=f"testbench generation/compile failed: "
                               f"{shard.expand_error}")
    own = [event for event in events if event.is_result]
    bad = [event for event in own if not event.ok]
    wall = sum(event.wall_time_s for event in own)
    covered = {item["name"] for event in own if event.ok
               for item in event.results}
    if bad or covered != shard.all_properties:
        status = bad[0].status if bad else "error"
        details = "; ".join(
            f"{event.task_id} [{event.status}] "
            f"{(event.error or '').strip().splitlines()[-1] if event.error else ''}"
            for event in bad) or "missing task results"
        expected = len(shard.all_properties)
        return JobResult(job_id=job.job_id, status=status,
                         error=f"{len(bad)}/{len(own)} property task(s) "
                               f"failed ({len(covered)}/{expected} "
                               f"properties decided): {details}",
                         wall_time_s=wall, steals=steals)
    if report is None:  # degenerate: a design with zero properties
        report = CheckReport(design=job.dut_module)
    payload = summarize_report(report)
    payload["annotation_loc"] = shard.annotation_loc
    payload["property_count"] = shard.property_count
    payload["engine_time_s"] = sum(event.engine_time_s for event in own)
    payload["solve_time_s"] = sum(event.solve_time_s for event in own)
    solver: Dict[str, float] = {}
    for event in own:
        for key, value in event.solver.items():
            solver[key] = solver.get(key, 0) + value
    payload["solver"] = solver
    from_cache = bool(own) and all(event.from_cache for event in own)
    original = None
    if from_cache:
        stored = [event.original_wall_time_s for event in own
                  if event.original_wall_time_s is not None]
        original = sum(stored) if stored else None
    return JobResult(job_id=job.job_id, status="ok", payload=payload,
                     wall_time_s=wall, from_cache=from_cache,
                     original_wall_time_s=original, steals=steals)


def merge_shard_results(plan: ShardPlan,
                        events: Sequence[TaskEvent],
                        steal_counts: Optional[Dict[str, int]] = None
                        ) -> List[JobResult]:
    """One :class:`JobResult` per original job, in job order.

    Payloads match :func:`~repro.campaign.jobs.execute_job` field for
    field; a job with any failed shard — or any property left undecided —
    degrades to a per-job error result (never a silently partial
    report).  Events are matched to jobs by *design label* and verdicts
    reassembled in canonical property order, so the merge is indifferent
    to how the scheduler grouped, reordered or work-stole the tasks.
    """
    from ..api.session import aggregate_reports

    steal_counts = steal_counts or {}
    by_design: Dict[str, List[TaskEvent]] = {}
    for event in events:
        if event.is_result:
            by_design.setdefault(event.design, []).append(event)
    reports = aggregate_reports(plan.tasks, events)
    return [_merge_one(shard, by_design.get(shard.job.job_id, []),
                       reports.get(shard.job.job_id),
                       steals=steal_counts.get(shard.job.job_id, 0))
            for shard in plan.shards]


def run_property_campaign(jobs: Sequence[CampaignJob],
                          workers: int = 1,
                          group_size: int = 1,
                          cache: Optional[ArtifactCache] = None,
                          timeout_s: Optional[float] = None,
                          memory_limit_mb: Optional[int] = None,
                          progress: Optional[Callable[[TaskEvent], None]]
                          = None,
                          schedule: str = "cost",
                          steal: Optional[bool] = None,
                          model: Optional[CostModel] = None,
                          transport=None
                          ) -> List[JobResult]:
    """Run a campaign at property granularity; results stay job-shaped.

    The streaming pipeline: :func:`stream_tasks` feeds the session's
    scheduler directly, so each design's FT generation + compile overlaps
    the checking of earlier designs' tasks.  ``schedule`` picks the
    grouping/issue policy (see the module docstring); ``steal`` toggles
    work stealing (default: on for ``cost``, off for ``inventory`` —
    the latter stays bit-compatible with the pre-pipeline behavior).
    ``transport`` runs the tasks on a remote worker fabric
    (:class:`~repro.dist.coordinator.TcpTransport`) instead of local
    forks; verdicts are identical by contract (CI-gated).

    The compile counter contract: every design × variant is compiled
    *at most* once, in this (parent) process, as its shard plan lands —
    check ``repro.api.COMPILE_CACHE.stats()`` before/after to assert it.
    Workers forked by the session inherit those compiles and report
    ``compiled_in_worker=False``.  With a warm cache the count drops
    further: a job restored from a cached shard plan whose task results
    are all cached compiles *zero* times (and skips FT generation too).
    """
    from ..api.session import VerificationSession

    if steal is None:
        steal = schedule == "cost"
    model = model or CostModel()
    plan = ShardPlan()
    source = stream_tasks(jobs, group_size=group_size, cache=cache,
                          schedule=schedule, model=model, plan=plan)
    session = VerificationSession(
        source, workers=workers, cache=cache, timeout_s=timeout_s,
        memory_limit_mb=memory_limit_mb,
        precompile=False,  # the stream compiles each design as it lands
        steal=steal, cost_model=model, transport=transport)
    for event in session.run():
        if progress:
            progress(event)
    return merge_shard_results(plan, session.events,
                               steal_counts=session.steal_counts)
