"""Property-granularity campaigns: shard design jobs into property tasks.

The whole-design :class:`~repro.campaign.jobs.CampaignJob` is the wrong
scheduling unit when one design dominates the critical path (the A4/O2
jobs in the corpus): a 4-worker pool idles while one worker grinds through
a big property set.  This module re-expresses a design-granularity job
list at per-property granularity on top of :mod:`repro.api`:

* :func:`shard_jobs` — generate each job's formal testbench, compile the
  design **once** (parent-side, through the shared compile cache) and
  unfold its property inventory into :class:`~repro.api.task.PropertyTask`
  groups;
* :func:`merge_shard_results` — fold the per-task results back into one
  :class:`~repro.campaign.scheduler.JobResult` per original job, with a
  payload identical in shape *and verdicts* to what
  :func:`~repro.campaign.jobs.execute_job` produces — reports, caches and
  expectation checks downstream cannot tell the difference;
* :func:`run_property_campaign` — the drop-in driver the CLI's
  ``--granularity property`` mode uses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

# NOTE: repro.api.session imports this package's scheduler; to keep both
# import orders working (api first or campaign first), the session-layer
# imports below happen inside the functions that need them.
from ..api.task import PropertyTask, TaskEvent, build_tasks, expand_tasks
from ..formal.engine import CheckReport
from .cache import ArtifactCache
from .jobs import CampaignJob, summarize_report
from .scheduler import JobResult

__all__ = ["ShardPlan", "shard_jobs", "merge_shard_results",
           "run_property_campaign"]


@dataclass
class _JobShard:
    """Book-keeping for one sharded design job."""

    job: CampaignJob
    task_ids: List[str] = field(default_factory=list)
    tasks: List[PropertyTask] = field(default_factory=list)
    annotation_loc: int = 0
    property_count: int = 0
    expand_error: Optional[str] = None   # FT/compile failed parent-side
    #: True when the shard was restored from a cached plan — FT generation
    #: and the parent-side compile were both skipped.
    from_plan_cache: bool = False


@dataclass
class ShardPlan:
    """The task list for a property-granularity campaign run."""

    shards: List[_JobShard]
    tasks: List[PropertyTask]

    @property
    def jobs(self) -> List[CampaignJob]:
        return [shard.job for shard in self.shards]


#: Bump to invalidate every cached shard plan (schema/semantics change).
_PLAN_SCHEMA = 1


def _plan_key(job: CampaignJob, group_size: int) -> str:
    """Content hash of everything that determines a job's shard plan.

    Deliberately its own key space (the ``shard-plan`` tag) next to job-
    and task-result entries in the same artifact cache directory.
    """
    from ..api.compile import config_fingerprint, hash_chunks

    pairs = [("shard-plan", str(_PLAN_SCHEMA)),
             ("group-size", str(group_size))]
    pairs.extend(job.cache_chunks())
    pairs.append(("config", config_fingerprint(job.engine_config)))
    return hash_chunks(pairs)


def _restore_shard(shard: _JobShard, entry: dict) -> List[PropertyTask]:
    """Rebuild a shard's task list from a cached plan entry.

    Reconstructs exactly what :func:`~repro.api.task.expand_tasks` would
    have produced — same task ids, same groups, same merged source — but
    without running the RTL frontend or the compiler (both go through the
    shared :func:`~repro.api.task.build_tasks`, so the schemes cannot
    drift).
    """
    job = shard.job
    merged = entry["merged"]
    tasks = build_tasks(job.job_id, job.dut_module, (merged,),
                        job.engine_config,
                        [tuple(group) for group in entry["groups"]],
                        variant=job.variant,
                        defines=tuple(entry.get("defines", ())))
    shard.annotation_loc = int(entry["annotation_loc"])
    shard.property_count = int(entry["property_count"])
    shard.task_ids = [task.task_id for task in tasks]
    shard.tasks = tasks
    shard.from_plan_cache = True
    return tasks


def shard_jobs(jobs: Sequence[CampaignJob],
               group_size: int = 1,
               cache: Optional[ArtifactCache] = None) -> ShardPlan:
    """Unfold design jobs into per-property tasks (one compile per job).

    A job whose sources fail to load, annotate or compile is recorded on
    the plan with ``expand_error`` and produces no tasks — the merge step
    turns it into a per-job ``error`` result, preserving the campaign's
    failure-isolation contract.

    With a ``cache``, each job's *shard plan* (testbench-merged source +
    property grouping) is itself content-cached: a warm rerun rebuilds its
    task list from disk and skips FT generation and the parent-side
    compile entirely, which is what makes a fully-warm
    ``--granularity property --cache-dir`` rerun as instant as a
    design-granularity one.
    """
    from ..core import generate_ft

    shards: List[_JobShard] = []
    tasks: List[PropertyTask] = []
    for job in jobs:
        shard = _JobShard(job=job)
        shards.append(shard)
        plan_key = _plan_key(job, group_size) if cache is not None else None
        if plan_key is not None:
            entry = cache.get(plan_key)
            if entry is not None:
                try:
                    tasks.extend(_restore_shard(shard, entry))
                    continue
                except (KeyError, TypeError, ValueError):
                    # Malformed/stale entry: fall through to a fresh plan.
                    shard.from_plan_cache = False
        try:
            sources = job.sources()
            ft = generate_ft(sources[0], module_name=job.dut_module)
            merged = "\n".join(sources + ft.testbench_sources())
            job_tasks = expand_tasks(
                [merged], job.dut_module, job.engine_config,
                design=job.job_id, variant=job.variant,
                group_size=group_size)
        except Exception as exc:
            shard.expand_error = f"{type(exc).__name__}: {exc}"
            continue
        shard.annotation_loc = ft.annotation_loc
        shard.property_count = ft.property_count
        shard.task_ids = [task.task_id for task in job_tasks]
        shard.tasks = list(job_tasks)
        tasks.extend(job_tasks)
        if plan_key is not None:
            cache.put(plan_key, {
                "merged": merged,
                "groups": [list(task.properties) for task in job_tasks],
                "defines": (list(job_tasks[0].defines)
                            if job_tasks else []),
                "annotation_loc": ft.annotation_loc,
                "property_count": ft.property_count,
            })
    return ShardPlan(shards=shards, tasks=tasks)


def _merge_one(shard: _JobShard,
               events: Dict[str, TaskEvent],
               report: Optional[CheckReport]) -> JobResult:
    job = shard.job
    if shard.expand_error is not None:
        return JobResult(job_id=job.job_id, status="error",
                         error=f"testbench generation/compile failed: "
                               f"{shard.expand_error}")
    own = [events[task_id] for task_id in shard.task_ids
           if task_id in events]
    bad = [event for event in own if not event.ok]
    wall = sum(event.wall_time_s for event in own)
    if bad or len(own) != len(shard.task_ids):
        status = bad[0].status if bad else "error"
        details = "; ".join(
            f"{event.task_id} [{event.status}] "
            f"{(event.error or '').strip().splitlines()[-1] if event.error else ''}"
            for event in bad) or "missing task results"
        return JobResult(job_id=job.job_id, status=status,
                         error=f"{len(bad)}/{len(shard.task_ids)} property "
                               f"task(s) failed: {details}",
                         wall_time_s=wall)
    if report is None:  # degenerate: a design with zero properties
        report = CheckReport(design=job.dut_module)
    payload = summarize_report(report)
    payload["annotation_loc"] = shard.annotation_loc
    payload["property_count"] = shard.property_count
    payload["engine_time_s"] = sum(event.engine_time_s for event in own)
    return JobResult(job_id=job.job_id, status="ok", payload=payload,
                     wall_time_s=wall,
                     from_cache=bool(own) and all(event.from_cache
                                                  for event in own))


def merge_shard_results(plan: ShardPlan,
                        events: Sequence[TaskEvent]) -> List[JobResult]:
    """One :class:`JobResult` per original job, in job order.

    Payloads match :func:`~repro.campaign.jobs.execute_job` field for
    field; a job with any failed shard degrades to a per-job error result
    (never a silently partial report).
    """
    from ..api.session import aggregate_reports

    by_id = {event.task_id: event for event in events}
    reports = aggregate_reports(plan.tasks, events)
    return [_merge_one(shard, by_id, reports.get(shard.job.job_id))
            for shard in plan.shards]


def run_property_campaign(jobs: Sequence[CampaignJob],
                          workers: int = 1,
                          group_size: int = 1,
                          cache: Optional[ArtifactCache] = None,
                          timeout_s: Optional[float] = None,
                          memory_limit_mb: Optional[int] = None,
                          progress: Optional[Callable[[TaskEvent], None]]
                          = None) -> List[JobResult]:
    """Run a campaign at property granularity; results stay job-shaped.

    The compile counter contract: every design × variant is compiled
    *at most* once, in this (parent) process, during sharding — check
    ``repro.api.COMPILE_CACHE.stats()`` before/after to assert it.
    Workers forked by the session inherit those compiles and report
    ``compiled_in_worker=False``.  With a warm cache the count drops
    further: a job restored from a cached shard plan whose task results
    are all cached compiles *zero* times (and skips FT generation too).
    """
    from ..api.compile import compile_design
    from ..api.session import VerificationSession

    plan = shard_jobs(jobs, group_size=group_size, cache=cache)
    if cache is not None:
        # Plan-cache-restored jobs skipped their parent-side compile.  If
        # any of their task results is missing from the artifact cache, a
        # worker would otherwise recompile per task — compile those (and
        # only those) designs here, preserving the one-compile guarantee.
        # (contains() parses each entry it peeks at, so a fully-warm rerun
        # reads result JSONs twice — once here, once at replay.  Entries
        # are small and the peek short-circuits on the first miss; fold
        # the peeked payloads into the session if this ever shows up.)
        for shard in plan.shards:
            if not shard.from_plan_cache or not shard.tasks:
                continue
            if all(cache.contains(cache.key(task))
                   for task in shard.tasks):
                continue
            try:
                compile_design(list(shard.tasks[0].sources),
                               shard.job.dut_module,
                               shard.tasks[0].defines)
            except Exception:
                # Workers will fail the same way, per task, preserving
                # the failure-isolation contract.
                pass
    session = VerificationSession(
        plan.tasks, workers=workers, cache=cache, timeout_s=timeout_s,
        memory_limit_mb=memory_limit_mb,
        precompile=False)  # shard_jobs / the loop above compiled everything
    for event in session.run():
        if progress:
            progress(event)
    return merge_shard_results(plan, session.events)
