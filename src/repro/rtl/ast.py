"""Abstract syntax tree for the SystemVerilog subset.

Expressions and statements are plain dataclasses; widths and parameter values
are resolved later by :mod:`repro.rtl.elaborate`.  SVA-specific nodes
(implication, ``s_eventually``, ``$past``/``$stable``) live in the same
expression tree — the synthesizer decides what is legal where.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

__all__ = [
    "Expr", "Num", "Id", "Unary", "Binary", "Ternary", "Concat", "Repl",
    "Index", "RangeSelect", "SysCall", "Delay", "Implication", "SEventually",
    "Stmt", "Block", "If", "Case", "CaseItem", "NonBlocking", "Blocking",
    "Range", "NetDecl", "ParamDecl", "Port", "Assign", "AlwaysFF",
    "AlwaysComb", "Instance", "AssertionItem", "Bind", "Module", "Design",
]


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------
class Expr:
    """Base class of all expression nodes."""

    line: int = 0


@dataclass
class Num(Expr):
    """A literal: ``value`` (int), explicit ``width`` (or None if unsized),
    and ``is_fill`` for '0/'1 context-determined fills."""

    value: int
    width: Optional[int] = None
    is_fill: bool = False
    line: int = 0


@dataclass
class Id(Expr):
    name: str
    line: int = 0


@dataclass
class Unary(Expr):
    op: str          # ! ~ & | ^ ~& ~| ~^ + -
    operand: Expr = None
    line: int = 0


@dataclass
class Binary(Expr):
    op: str          # && || == != < <= > >= & | ^ + - * / % << >> === !==
    lhs: Expr = None
    rhs: Expr = None
    line: int = 0


@dataclass
class Ternary(Expr):
    cond: Expr
    then_expr: Expr
    else_expr: Expr
    line: int = 0


@dataclass
class Concat(Expr):
    parts: List[Expr] = field(default_factory=list)
    line: int = 0


@dataclass
class Repl(Expr):
    count: Expr = None
    value: Expr = None
    line: int = 0


@dataclass
class Index(Expr):
    """``base[index]`` — bit select or unpacked-array element select."""

    base: Expr = None
    index: Expr = None
    line: int = 0


@dataclass
class RangeSelect(Expr):
    """``base[msb:lsb]`` (constant part select)."""

    base: Expr = None
    msb: Expr = None
    lsb: Expr = None
    line: int = 0


@dataclass
class SysCall(Expr):
    """System function call: $stable, $past, $rose, $fell, $onehot,
    $onehot0, $countones, $signed, $unsigned, $clog2, $initstate."""

    name: str
    args: List[Expr] = field(default_factory=list)
    line: int = 0


@dataclass
class Delay(Expr):
    """Sequence delay ``##N expr`` (supported as a property prefix)."""

    cycles: int
    expr: Expr = None
    line: int = 0


@dataclass
class Implication(Expr):
    """SVA implication ``antecedent |-> consequent`` (or ``|=>``)."""

    op: str          # "|->" or "|=>"
    antecedent: Expr = None
    consequent: Expr = None
    line: int = 0


@dataclass
class SEventually(Expr):
    """SVA strong eventually: ``s_eventually expr``."""

    expr: Expr = None
    line: int = 0


# ---------------------------------------------------------------------------
# Statements (inside always blocks)
# ---------------------------------------------------------------------------
class Stmt:
    line: int = 0


@dataclass
class Block(Stmt):
    stmts: List[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class If(Stmt):
    cond: Expr
    then_stmt: Stmt
    else_stmt: Optional[Stmt] = None
    line: int = 0


@dataclass
class CaseItem:
    labels: List[Expr]         # empty list = default
    stmt: Stmt = None


@dataclass
class Case(Stmt):
    subject: Expr
    items: List[CaseItem] = field(default_factory=list)
    line: int = 0


@dataclass
class NonBlocking(Stmt):
    """``target <= value`` inside always_ff."""

    target: Expr
    value: Expr
    line: int = 0


@dataclass
class Blocking(Stmt):
    """``target = value`` inside always_comb."""

    target: Expr
    value: Expr
    line: int = 0


# ---------------------------------------------------------------------------
# Module items
# ---------------------------------------------------------------------------
@dataclass
class Range:
    """A packed or unpacked range ``[msb:lsb]`` (expressions, pre-elab)."""

    msb: Expr
    lsb: Expr


@dataclass
class ParamDecl:
    name: str
    default: Expr
    is_local: bool = False
    line: int = 0


@dataclass
class Port:
    direction: str                  # input | output
    name: str
    packed: Optional[Range] = None  # None = 1-bit scalar
    net_type: str = "wire"
    line: int = 0


@dataclass
class NetDecl:
    name: str
    net_type: str = "wire"          # wire | reg | logic | integer
    packed: Optional[Range] = None
    unpacked: Optional[Range] = None  # memories: name [0:N-1]
    init: Optional[Expr] = None      # wire x = expr; sugar for assign
    line: int = 0


@dataclass
class Assign:
    target: Expr
    value: Expr
    line: int = 0


@dataclass
class AlwaysFF:
    """``always_ff @(posedge clk [or negedge rst_n])`` with its body.

    ``reset_name``/``reset_active_low`` capture an async reset edge if one is
    present in the sensitivity list.
    """

    clock: str
    body: Stmt
    reset_name: Optional[str] = None
    reset_active_low: bool = True
    line: int = 0


@dataclass
class AlwaysComb:
    body: Stmt
    line: int = 0


@dataclass
class Instance:
    module_name: str
    instance_name: str
    param_overrides: List[Tuple[str, Expr]] = field(default_factory=list)
    # connections: (port, expr); expr None for .name shorthand; a single
    # ("*", None) entry means .* (connect-by-name).
    connections: List[Tuple[str, Optional[Expr]]] = field(default_factory=list)
    line: int = 0


@dataclass
class AssertionItem:
    """``label: assert/assume/cover property ( [@(posedge clk)]
    [disable iff (expr)] property_expr );``"""

    directive: str                # assert | assume | cover | restrict
    label: str
    prop: Expr = None
    clock: Optional[str] = None
    disable_iff: Optional[Expr] = None
    line: int = 0


@dataclass
class Bind(Stmt):
    """``bind target_module checker_module inst (.*);``"""

    target_module: str
    checker_module: str
    instance_name: str
    param_overrides: List[Tuple[str, Expr]] = field(default_factory=list)
    connections: List[Tuple[str, Optional[Expr]]] = field(default_factory=list)
    line: int = 0


@dataclass
class Module:
    name: str
    params: List[ParamDecl] = field(default_factory=list)
    ports: List[Port] = field(default_factory=list)
    nets: List[NetDecl] = field(default_factory=list)
    assigns: List[Assign] = field(default_factory=list)
    always_ffs: List[AlwaysFF] = field(default_factory=list)
    always_combs: List[AlwaysComb] = field(default_factory=list)
    instances: List[Instance] = field(default_factory=list)
    assertions: List[AssertionItem] = field(default_factory=list)
    line: int = 0

    def port(self, name: str) -> Port:
        for port in self.ports:
            if port.name == name:
                return port
        raise KeyError(f"{self.name}: no port {name!r}")


@dataclass
class Design:
    """A set of parsed modules plus bind directives."""

    modules: List[Module] = field(default_factory=list)
    binds: List[Bind] = field(default_factory=list)

    def module(self, name: str) -> Module:
        for module in self.modules:
            if module.name == name:
                return module
        raise KeyError(f"no module named {name!r}")

    def merge(self, other: "Design") -> "Design":
        merged = Design(modules=list(self.modules), binds=list(self.binds))
        existing = {m.name for m in merged.modules}
        for module in other.modules:
            if module.name in existing:
                raise ValueError(f"duplicate module {module.name!r}")
            merged.modules.append(module)
            existing.add(module.name)
        merged.binds.extend(other.binds)
        return merged
