"""Minimal `ifdef preprocessor.

AutoSVA property files guard X-propagation assertions behind ``\\`ifdef
XPROP`` (they are meaningful only in simulation — formal tools assign 0/1 to
every bit, Section III-B).  The formal flow parses with ``XPROP`` undefined;
the simulator defines it.  Only ``\\`ifdef/\\`ifndef/\\`else/\\`endif`` are
interpreted; other backtick directives are left for the lexer to skip.
"""

from __future__ import annotations

from typing import Iterable, List, Set

__all__ = ["strip_ifdefs"]


def strip_ifdefs(text: str, defines: Iterable[str] = ()) -> str:
    """Remove lines in inactive `ifdef regions.

    Line-oriented: a directive must be the first token on its line.  Nesting
    is supported; unbalanced directives raise ValueError.
    """
    defined: Set[str] = set(defines)
    out: List[str] = []
    # Each stack entry: (was_active_before, this_branch_active, any_branch_taken)
    stack: List[List[bool]] = []

    def active() -> bool:
        return all(entry[1] for entry in stack)

    for lineno, line in enumerate(text.splitlines(keepends=True), start=1):
        stripped = line.lstrip()
        if stripped.startswith("`ifdef") or stripped.startswith("`ifndef"):
            parts = stripped.split()
            if len(parts) < 2:
                raise ValueError(f"line {lineno}: malformed {parts[0]}")
            hit = parts[1] in defined
            if stripped.startswith("`ifndef"):
                hit = not hit
            stack.append([active(), hit, hit])
        elif stripped.startswith("`else"):
            if not stack:
                raise ValueError(f"line {lineno}: `else without `ifdef")
            entry = stack[-1]
            entry[1] = not entry[2]
            entry[2] = True
        elif stripped.startswith("`endif"):
            if not stack:
                raise ValueError(f"line {lineno}: `endif without `ifdef")
            stack.pop()
        else:
            if active():
                out.append(line)
            continue
        # Directive lines themselves are always dropped.
    if stack:
        raise ValueError("unterminated `ifdef region")
    return "".join(out)
