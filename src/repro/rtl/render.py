"""Render :mod:`repro.rtl.ast` expression trees back to Verilog text.

Used by the AutoSVA generator to copy DUT parameter defaults and port widths
into the generated property module, and by tests as a round-trip check.
"""

from __future__ import annotations

from . import ast

__all__ = ["render_expr"]

_PRECEDENCE = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6, "===": 6, "!==": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8, "<<<": 8, ">>>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


def render_expr(expr: ast.Expr, parent_prec: int = 0) -> str:
    """Deterministic, minimally-parenthesized Verilog rendering."""
    if isinstance(expr, ast.Num):
        if expr.is_fill:
            return f"'{1 if expr.value else 0}"
        if expr.width is not None:
            return f"{expr.width}'d{expr.value}"
        return str(expr.value)
    if isinstance(expr, ast.Id):
        return expr.name
    if isinstance(expr, ast.Unary):
        inner = render_expr(expr.operand, parent_prec=11)
        return f"{expr.op}{inner}"
    if isinstance(expr, ast.Binary):
        prec = _PRECEDENCE.get(expr.op, 0)
        text = (f"{render_expr(expr.lhs, prec)} {expr.op} "
                f"{render_expr(expr.rhs, prec + 1)}")
        if prec < parent_prec:
            return f"({text})"
        return text
    if isinstance(expr, ast.Ternary):
        text = (f"{render_expr(expr.cond, 1)} ? "
                f"{render_expr(expr.then_expr)} : "
                f"{render_expr(expr.else_expr)}")
        return f"({text})" if parent_prec > 0 else text
    if isinstance(expr, ast.Concat):
        return "{" + ", ".join(render_expr(p) for p in expr.parts) + "}"
    if isinstance(expr, ast.Repl):
        return ("{" + render_expr(expr.count) + "{"
                + render_expr(expr.value) + "}}")
    if isinstance(expr, ast.Index):
        return f"{render_expr(expr.base, 11)}[{render_expr(expr.index)}]"
    if isinstance(expr, ast.RangeSelect):
        return (f"{render_expr(expr.base, 11)}[{render_expr(expr.msb)}"
                f":{render_expr(expr.lsb)}]")
    if isinstance(expr, ast.SysCall):
        args = ", ".join(render_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, ast.SEventually):
        return f"s_eventually ({render_expr(expr.expr)})"
    if isinstance(expr, ast.Implication):
        return (f"{render_expr(expr.antecedent)} {expr.op} "
                f"{render_expr(expr.consequent)}")
    if isinstance(expr, ast.Delay):
        return f"##{expr.cycles} {render_expr(expr.expr)}"
    raise TypeError(f"cannot render {type(expr).__name__}")
