"""Synthesis: elaborated RTL + SVA -> :class:`TransitionSystem`.

This is the stand-in for the RTL frontend of a commercial formal tool.  It
flattens the module hierarchy (including ``bind``-attached property modules),
lowers all logic to an and-inverter graph, turns ``always_ff`` blocks into
latches with reset-derived initial values, and compiles SVA items:

* ``assert/assume/cover property`` without ``s_eventually`` — safety literals;
* ``A |-> s_eventually B`` — liveness via a pending-obligation monitor
  (asserted: justice obligation; assumed: fairness constraint);
* ``$past/$stable/$rose/$fell`` — shadow registers;
* ``$isunknown`` — constant 0 (formal is two-valued, paper Section III-B).

Reset handling follows standard formal-setup practice: reset inputs named in
``always_ff`` sensitivity lists (or matched by ``if (!rst)`` guards) are tied
to their inactive level and the reset branch supplies latch initial values,
so cycle 0 of every trace is the freshly-reset state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..formal.aig import FALSE, TRUE
from ..formal.transition import Latch, TransitionSystem
from . import ast
from .elaborate import ElabError, array_size, const_eval, range_width
from .parser import parse_design
from .preprocess import strip_ifdefs

__all__ = ["SynthError", "Synthesizer", "synthesize", "expr_key"]


class SynthError(ElabError):
    """Design or property construct outside the supported subset."""


# ---------------------------------------------------------------------------
# Expression fingerprinting (for $past shadow-register sharing and naming)
# ---------------------------------------------------------------------------
def expr_key(expr: ast.Expr) -> str:
    """A stable, readable fingerprint of an expression tree."""
    if isinstance(expr, ast.Num):
        return str(expr.value)
    if isinstance(expr, ast.Id):
        return expr.name
    if isinstance(expr, ast.Unary):
        return f"({expr.op}{expr_key(expr.operand)})"
    if isinstance(expr, ast.Binary):
        return f"({expr_key(expr.lhs)}{expr.op}{expr_key(expr.rhs)})"
    if isinstance(expr, ast.Ternary):
        return (f"({expr_key(expr.cond)}?{expr_key(expr.then_expr)}"
                f":{expr_key(expr.else_expr)})")
    if isinstance(expr, ast.Concat):
        return "{" + ",".join(expr_key(p) for p in expr.parts) + "}"
    if isinstance(expr, ast.Repl):
        return ("{" + expr_key(expr.count) + "{" + expr_key(expr.value)
                + "}}")
    if isinstance(expr, ast.Index):
        return f"{expr_key(expr.base)}[{expr_key(expr.index)}]"
    if isinstance(expr, ast.RangeSelect):
        return (f"{expr_key(expr.base)}[{expr_key(expr.msb)}"
                f":{expr_key(expr.lsb)}]")
    if isinstance(expr, ast.SysCall):
        return expr.name + "(" + ",".join(expr_key(a) for a in expr.args) + ")"
    if isinstance(expr, ast.SEventually):
        return f"s_eventually({expr_key(expr.expr)})"
    if isinstance(expr, ast.Implication):
        return (f"({expr_key(expr.antecedent)}{expr.op}"
                f"{expr_key(expr.consequent)})")
    if isinstance(expr, ast.Delay):
        return f"##{expr.cycles} {expr_key(expr.expr)}"
    raise SynthError(f"cannot fingerprint {type(expr).__name__}")


# ---------------------------------------------------------------------------
# Scope model
# ---------------------------------------------------------------------------
@dataclass
class Signal:
    name: str
    qualified: str
    width: int
    is_array: bool = False
    size: int = 0
    bits: Optional[List[int]] = None            # resolved AIG literals
    elem_bits: Optional[List[List[int]]] = None  # arrays
    latches: Optional[List[Latch]] = None        # registers
    elem_latches: Optional[List[List[Latch]]] = None
    resolving: bool = False


@dataclass
class Driver:
    kind: str                      # input|tied|assign|comb|reg|instout|conn|symbolic
    expr: Optional[ast.Expr] = None
    scope: Optional["Scope"] = None  # for conn (parent scope) / instout (child)
    port: str = ""
    block: Optional[object] = None   # AlwaysComb for comb
    tied_value: int = 0


@dataclass
class Scope:
    module: ast.Module
    prefix: str                    # "" for top, else "inst." chains
    params: Dict[str, int]
    signals: Dict[str, Signal] = field(default_factory=dict)
    drivers: Dict[str, Driver] = field(default_factory=dict)
    children: List["Scope"] = field(default_factory=list)
    ff_blocks: List[ast.AlwaysFF] = field(default_factory=list)
    comb_results: Dict[int, Dict[str, object]] = field(default_factory=dict)
    comb_running: Set[int] = field(default_factory=set)

    def qualify(self, name: str) -> str:
        return f"{self.prefix}{name}"


# ---------------------------------------------------------------------------
# Synthesizer
# ---------------------------------------------------------------------------
class Synthesizer:
    """Builds a fresh :class:`TransitionSystem` from a parsed design."""

    def __init__(self, design: ast.Design, top: str,
                 param_overrides: Optional[Dict[str, int]] = None,
                 tie_resets: bool = True,
                 observe_all: bool = True) -> None:
        self.design = design
        self.top_name = top
        self.param_overrides = dict(param_overrides or {})
        self.tie_resets = tie_resets
        self.observe_all = observe_all
        self.warnings: List[str] = []
        self.ts = TransitionSystem(top)
        self._g = self.ts.aig
        self._reset_names: Dict[str, bool] = {}   # name -> active_low
        self._past_cache: Dict[Tuple[str, str], List[Latch]] = {}
        self._first_cycle: Optional[Latch] = None
        self._scopes: List[Scope] = []

    # -- public ------------------------------------------------------------
    def build(self) -> TransitionSystem:
        top_module = self.design.module(self.top_name)
        self._collect_reset_names()
        top_scope = self._elaborate(top_module, prefix="",
                                    overrides=self.param_overrides,
                                    is_top=True)
        # Elaborate every output port eagerly so design errors (latch
        # inference, combinational loops) surface even when nothing else
        # consumes the signal.
        for port in top_module.ports:
            if port.direction == "output":
                self.signal_bits(top_scope, port.name)
        # Resolve every latch's next function, then compile assertions.
        for scope in self._scopes:
            for block in scope.ff_blocks:
                self._process_ff(scope, block)
        for scope in self._scopes:
            for item in scope.module.assertions:
                self._compile_assertion(scope, item)
        if self.observe_all:
            self._register_observables(top_scope)
        return self.ts

    # -- reset discovery -----------------------------------------------------
    def _collect_reset_names(self) -> None:
        for module in self.design.modules:
            for block in module.always_ffs:
                if block.reset_name:
                    self._reset_names[block.reset_name] = \
                        block.reset_active_low

    def _is_reset(self, name: str) -> bool:
        return self.tie_resets and name in self._reset_names

    # -- elaboration -----------------------------------------------------------
    def _elaborate(self, module: ast.Module, prefix: str,
                   overrides: Dict[str, int], is_top: bool) -> Scope:
        params: Dict[str, int] = {}
        for decl in module.params:
            if not decl.is_local and decl.name in overrides:
                params[decl.name] = overrides[decl.name]
            else:
                params[decl.name] = const_eval(decl.default, params)
        for name in overrides:
            if name not in params:
                raise SynthError(f"{module.name}: unknown parameter {name!r}")
        scope = Scope(module=module, prefix=prefix, params=params)
        self._scopes.append(scope)

        # Declare ports.
        for port in module.ports:
            width = range_width(port.packed, params)
            self._declare(scope, port.name, width)
        # Declare nets.
        for net in module.nets:
            width = range_width(net.packed, params)
            size = array_size(net.unpacked, params)
            self._declare(scope, net.name, width, is_array=size > 0,
                          size=size)
            if net.init is not None:
                self._set_driver(scope, net.name, Driver(
                    kind="assign", expr=net.init, scope=scope))
        # Continuous assigns.
        for assign in module.assigns:
            target = assign.target
            if not isinstance(target, ast.Id):
                raise SynthError(f"{module.name} line {assign.line}: assign "
                                 f"targets must be whole signals")
            self._set_driver(scope, target.name, Driver(
                kind="assign", expr=assign.value, scope=scope))
        # always_comb blocks: each is one driver shared by all its targets.
        for comb in module.always_combs:
            for name in sorted(self._targets_of(comb.body)):
                self._set_driver(scope, name, Driver(kind="comb",
                                                     block=comb))
        # always_ff blocks: targets become latches.
        for ff in module.always_ffs:
            scope.ff_blocks.append(ff)
            for name in sorted(self._targets_of(ff.body)):
                signal = self._lookup(scope, name, ff.line)
                self._set_driver(scope, name, Driver(kind="reg", block=ff))
                self._make_latches(scope, signal)
        # Ports: top-level inputs are free; outputs must be driven inside.
        for port in module.ports:
            if port.direction == "input" and port.name not in scope.drivers:
                if is_top:
                    kind = "tied" if self._is_reset(port.name) else "input"
                    tied = (1 if self._reset_names.get(port.name, True)
                            else 0)
                    self._set_driver(scope, port.name, Driver(
                        kind=kind, tied_value=tied))
                # Non-top input ports get their "conn" driver from the parent.
        # Instances.
        for inst in module.instances:
            self._elaborate_instance(scope, inst)
        # Binds targeting this module type.
        for bind in self.design.binds:
            if bind.target_module == module.name:
                inst = ast.Instance(module_name=bind.checker_module,
                                    instance_name=bind.instance_name,
                                    param_overrides=bind.param_overrides,
                                    connections=bind.connections,
                                    line=bind.line)
                self._elaborate_instance(scope, inst)
        return scope

    def _elaborate_instance(self, scope: Scope, inst: ast.Instance) -> None:
        child_module = self.design.module(inst.module_name)
        overrides: Dict[str, int] = {}
        for name, expr in inst.param_overrides:
            overrides[name] = const_eval(expr, scope.params)
        child_prefix = f"{scope.prefix}{inst.instance_name}."
        child = self._elaborate(child_module, prefix=child_prefix,
                                overrides=overrides, is_top=False)
        scope.children.append(child)

        # Expand .* into by-name connections for unconnected ports.
        explicit = {name for name, _ in inst.connections if name != "*"}
        connections = [(n, e) for n, e in inst.connections if n != "*"]
        if any(name == "*" for name, _ in inst.connections):
            for port in child_module.ports:
                if port.name not in explicit:
                    connections.append((port.name, ast.Id(name=port.name)))

        for port_name, expr in connections:
            port = child_module.port(port_name)
            if port.direction == "input":
                if expr is None:
                    self.warnings.append(
                        f"{child_prefix}{port_name}: open input -> symbolic")
                    continue
                self._set_driver(child, port_name, Driver(
                    kind="conn", expr=expr, scope=scope))
            else:
                if expr is None:
                    continue  # open output
                if not isinstance(expr, ast.Id):
                    raise SynthError(
                        f"line {inst.line}: output port {port_name} must "
                        f"connect to a plain signal")
                self._set_driver(scope, expr.name, Driver(
                    kind="instout", scope=child, port=port_name))

    # -- scope helpers -----------------------------------------------------
    def _declare(self, scope: Scope, name: str, width: int,
                 is_array: bool = False, size: int = 0) -> Signal:
        if name in scope.signals:
            raise SynthError(f"{scope.qualify(name)}: duplicate declaration")
        if name in scope.params:
            raise SynthError(f"{scope.qualify(name)}: shadows a parameter")
        signal = Signal(name=name, qualified=scope.qualify(name),
                        width=width, is_array=is_array, size=size)
        scope.signals[name] = signal
        return signal

    def _lookup(self, scope: Scope, name: str, line: int = 0) -> Signal:
        signal = scope.signals.get(name)
        if signal is None:
            raise SynthError(f"line {line}: undeclared signal "
                             f"{scope.qualify(name)}")
        return signal

    def _set_driver(self, scope: Scope, name: str, driver: Driver) -> None:
        signal = self._lookup(scope, name)
        existing = scope.drivers.get(name)
        if existing is not None:
            raise SynthError(f"{signal.qualified}: multiple drivers "
                             f"({existing.kind} and {driver.kind})")
        scope.drivers[name] = driver

    def _make_latches(self, scope: Scope, signal: Signal) -> None:
        if signal.is_array:
            signal.elem_latches = []
            signal.elem_bits = []
            for idx in range(signal.size):
                lats = self.ts.add_latch_vec(
                    f"{signal.qualified}[{idx}]", signal.width, init=0)
                signal.elem_latches.append(lats)
                signal.elem_bits.append([lat.node for lat in lats])
        else:
            signal.latches = self.ts.add_latch_vec(signal.qualified,
                                                   signal.width, init=0)
            signal.bits = [lat.node for lat in signal.latches]

    @staticmethod
    def _targets_of(stmt: ast.Stmt) -> Set[str]:
        targets: Set[str] = set()

        def visit(node: ast.Stmt) -> None:
            if isinstance(node, ast.Block):
                for child in node.stmts:
                    visit(child)
            elif isinstance(node, ast.If):
                visit(node.then_stmt)
                if node.else_stmt is not None:
                    visit(node.else_stmt)
            elif isinstance(node, ast.Case):
                for item in node.items:
                    visit(item.stmt)
            elif isinstance(node, (ast.NonBlocking, ast.Blocking)):
                target = node.target
                while isinstance(target, (ast.Index, ast.RangeSelect)):
                    target = target.base
                if not isinstance(target, ast.Id):
                    raise SynthError(f"line {node.line}: unsupported "
                                     f"assignment target")
                targets.add(target.name)

        visit(stmt)
        return targets

    # -- signal resolution ----------------------------------------------------
    def signal_bits(self, scope: Scope, name: str, line: int = 0) -> List[int]:
        signal = self._lookup(scope, name, line)
        if signal.is_array:
            raise SynthError(f"{signal.qualified}: array used as a vector")
        if signal.bits is not None:
            return signal.bits
        if signal.resolving:
            raise SynthError(f"{signal.qualified}: combinational loop")
        signal.resolving = True
        try:
            signal.bits = self._resolve(scope, signal)
        finally:
            signal.resolving = False
        return signal.bits

    def array_elem_bits(self, scope: Scope, name: str,
                        line: int = 0) -> List[List[int]]:
        signal = self._lookup(scope, name, line)
        if not signal.is_array:
            raise SynthError(f"{signal.qualified}: not an array")
        if signal.elem_bits is None:
            raise SynthError(f"{signal.qualified}: arrays must be registers")
        return signal.elem_bits

    def _resolve(self, scope: Scope, signal: Signal) -> List[int]:
        driver = scope.drivers.get(signal.name)
        if driver is None:
            # Undriven: a symbolic free variable (AutoSVA symbolics).
            self.warnings.append(f"{signal.qualified}: undriven -> symbolic")
            return self.ts.add_input_vec(signal.qualified, signal.width)
        if driver.kind == "input":
            return self.ts.add_input_vec(signal.qualified, signal.width)
        if driver.kind == "tied":
            return self._g.const_vec(driver.tied_value, signal.width)
        if driver.kind == "assign":
            bits = self._eval(driver.scope or scope, driver.expr)
            return self._fit(bits, signal.width)
        if driver.kind == "conn":
            bits = self._eval(driver.scope, driver.expr)
            return self._fit(bits, signal.width)
        if driver.kind == "instout":
            bits = self.signal_bits(driver.scope, driver.port)
            return self._fit(bits, signal.width)
        if driver.kind == "comb":
            env = self._run_comb(scope, driver.block)
            if signal.name not in env:
                raise SynthError(f"{signal.qualified}: not assigned on all "
                                 f"paths of always_comb (latch inferred)")
            value = env[signal.name]
            return self._fit(value, signal.width)
        raise SynthError(f"{signal.qualified}: unexpected driver "
                         f"{driver.kind}")

    def _run_comb(self, scope: Scope, comb: ast.AlwaysComb) -> Dict[str, List[int]]:
        key = id(comb)
        if key in scope.comb_results:
            return scope.comb_results[key]
        if key in scope.comb_running:
            raise SynthError(f"{scope.prefix or 'top'}: always_comb "
                             f"combinational loop")
        scope.comb_running.add(key)
        try:
            targets = self._targets_of(comb.body)
            env: Dict[str, object] = {}
            self._exec_stmt(scope, comb.body, env, targets, is_ff=False)
            result = {name: value for name, value in env.items()
                      if isinstance(value, list)}
            scope.comb_results[key] = result
            return result
        finally:
            scope.comb_running.discard(key)

    # -- always_ff processing ---------------------------------------------------
    def _process_ff(self, scope: Scope, block: ast.AlwaysFF) -> None:
        body = block.body
        reset_stmt: Optional[ast.Stmt] = None
        main_stmt: ast.Stmt = body
        if isinstance(body, ast.Block) and len(body.stmts) == 1:
            body = body.stmts[0]
            main_stmt = body
        if isinstance(body, ast.If) and self._is_reset_cond(body.cond,
                                                            block):
            reset_stmt = body.then_stmt
            main_stmt = body.else_stmt or ast.Block(stmts=[])
        elif block.reset_name:
            raise SynthError(
                f"line {block.line}: always_ff with reset "
                f"{block.reset_name!r} must start with its reset if")

        targets = self._targets_of(block.body)
        # Reset branch: constant init values.
        if reset_stmt is not None:
            init_env: Dict[str, object] = {}
            self._exec_stmt(scope, reset_stmt, init_env, targets, is_ff=True)
            for name, value in init_env.items():
                self._apply_init(scope, name, value)
        # Main branch: next-state functions (default: hold).
        env: Dict[str, object] = {}
        self._exec_stmt(scope, main_stmt, env, targets, is_ff=True)
        for name in targets:
            signal = self._lookup(scope, name, block.line)
            value = env.get(name)
            if signal.is_array:
                current = signal.elem_bits
                nexts = value if value is not None else current
                for idx in range(signal.size):
                    elem_next = nexts[idx] if value is not None else \
                        current[idx]
                    for lat, bit in zip(signal.elem_latches[idx],
                                        self._fit(list(elem_next),
                                                  signal.width)):
                        self.ts.set_next(lat, bit)
            else:
                nxt = value if value is not None else signal.bits
                for lat, bit in zip(signal.latches,
                                    self._fit(list(nxt), signal.width)):
                    self.ts.set_next(lat, bit)

    def _is_reset_cond(self, cond: ast.Expr, block: ast.AlwaysFF) -> bool:
        """Match ``!rst_n`` / ``~rst_n`` (active-low) or ``rst`` patterns."""
        name: Optional[str] = None
        active_low = False
        if isinstance(cond, ast.Unary) and cond.op in ("!", "~") and \
                isinstance(cond.operand, ast.Id):
            name = cond.operand.name
            active_low = True
        elif isinstance(cond, ast.Id):
            name = cond.name
            active_low = False
        if name is None:
            return False
        if block.reset_name:
            return name == block.reset_name and \
                active_low == block.reset_active_low
        # Sync reset: accept conventional names.
        if name in self._reset_names:
            return True
        lowered = name.lower()
        if lowered.startswith("rst") or lowered.startswith("reset") or \
                lowered.endswith("rst_n") or lowered.endswith("rst_ni"):
            self._reset_names.setdefault(name, active_low)
            return True
        return False

    def _apply_init(self, scope: Scope, name: str, value: object) -> None:
        signal = self._lookup(scope, name)

        def to_const(bits: List[int], where: str) -> List[bool]:
            out = []
            for bit in self._fit(list(bits), signal.width):
                if bit == TRUE:
                    out.append(True)
                elif bit == FALSE:
                    out.append(False)
                else:
                    raise SynthError(f"{where}: reset value must be constant")
            return out

        if signal.is_array:
            for idx in range(signal.size):
                consts = to_const(value[idx], f"{signal.qualified}[{idx}]")
                for lat, const in zip(signal.elem_latches[idx], consts):
                    lat.init = const
        else:
            consts = to_const(value, signal.qualified)
            for lat, const in zip(signal.latches, consts):
                lat.init = const

    # -- statement execution (symbolic) -------------------------------------
    def _exec_stmt(self, scope: Scope, stmt: ast.Stmt, env: Dict[str, object],
                   targets: Set[str], is_ff: bool) -> None:
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                self._exec_stmt(scope, child, env, targets, is_ff)
            return
        if isinstance(stmt, ast.If):
            cond = self._to_bool(self._eval(scope, stmt.cond,
                                            env=None if is_ff else env,
                                            comb_targets=targets if not is_ff
                                            else None))
            then_env = dict(env)
            self._exec_stmt(scope, stmt.then_stmt, then_env, targets, is_ff)
            else_env = dict(env)
            if stmt.else_stmt is not None:
                self._exec_stmt(scope, stmt.else_stmt, else_env, targets,
                                is_ff)
            self._merge_env(scope, env, cond, then_env, else_env, targets,
                            is_ff)
            return
        if isinstance(stmt, ast.Case):
            self._exec_case(scope, stmt, env, targets, is_ff)
            return
        if isinstance(stmt, (ast.NonBlocking, ast.Blocking)):
            self._exec_assign(scope, stmt, env, targets, is_ff)
            return
        raise SynthError(f"line {stmt.line}: unsupported statement")

    def _exec_case(self, scope: Scope, stmt: ast.Case, env: Dict[str, object],
                   targets: Set[str], is_ff: bool) -> None:
        read_env = None if is_ff else env
        comb_targets = None if is_ff else targets
        subject = self._eval(scope, stmt.subject, env=read_env,
                             comb_targets=comb_targets)
        # Lower to an if-else chain, last item first.
        chain: List[Tuple[Optional[int], ast.Stmt]] = []
        default_stmt: Optional[ast.Stmt] = None
        for item in stmt.items:
            if not item.labels:
                default_stmt = item.stmt
                continue
            conds = []
            for label in item.labels:
                label_bits = self._fit(
                    self._eval(scope, label, env=read_env,
                               comb_targets=comb_targets), len(subject))
                conds.append(self._g.eq_vec(subject, label_bits))
            chain.append((self._g.or_many(conds), item.stmt))

        # Execute from the default up, merging under each condition.
        merged = dict(env)
        if default_stmt is not None:
            self._exec_stmt(scope, default_stmt, merged, targets, is_ff)
        for cond, item_stmt in reversed(chain):
            item_env = dict(env)
            self._exec_stmt(scope, item_stmt, item_env, targets, is_ff)
            out = dict(env)
            self._merge_env(scope, out, cond, item_env, merged, targets,
                            is_ff)
            merged = out
        env.clear()
        env.update(merged)

    def _exec_assign(self, scope: Scope, stmt, env: Dict[str, object],
                     targets: Set[str], is_ff: bool) -> None:
        read_env = None if is_ff else env
        comb_targets = None if is_ff else targets
        value = self._eval(scope, stmt.value, env=read_env,
                           comb_targets=comb_targets)
        target = stmt.target
        # Whole-signal assignment.
        if isinstance(target, ast.Id):
            signal = self._lookup(scope, target.name, stmt.line)
            if signal.is_array:
                raise SynthError(f"{signal.qualified}: whole-array "
                                 f"assignment unsupported")
            env[target.name] = self._fit(value, signal.width)
            return
        # Indexed assignment: array element or bit select.
        if isinstance(target, ast.Index) and isinstance(target.base, ast.Id):
            name = target.base.name
            signal = self._lookup(scope, name, stmt.line)
            index_bits = self._eval(scope, target.index, env=read_env,
                                    comb_targets=comb_targets)
            if signal.is_array:
                if not is_ff:
                    raise SynthError(f"{signal.qualified}: arrays must be "
                                     f"written in always_ff")
                current = env.get(name)
                if current is None:
                    current = [list(bits) for bits in signal.elem_bits]
                value_fit = self._fit(value, signal.width)
                new_elems = []
                for idx in range(signal.size):
                    hit = self._index_equals(index_bits, idx)
                    new_elems.append(self._g.mux_vec(hit, value_fit,
                                                     list(current[idx])))
                env[name] = new_elems
                return
            # Bit select on a vector.
            current_bits = self._current_value(scope, signal, env, is_ff)
            value_bit = self._fit(value, 1)[0]
            new_bits = []
            for idx in range(signal.width):
                hit = self._index_equals(index_bits, idx)
                new_bits.append(self._g.MUX(hit, value_bit,
                                            current_bits[idx]))
            env[name] = new_bits
            return
        if isinstance(target, ast.RangeSelect) and \
                isinstance(target.base, ast.Id):
            name = target.base.name
            signal = self._lookup(scope, name, stmt.line)
            msb = const_eval(target.msb, scope.params)
            lsb = const_eval(target.lsb, scope.params)
            current_bits = self._current_value(scope, signal, env, is_ff)
            value_fit = self._fit(value, msb - lsb + 1)
            new_bits = list(current_bits)
            new_bits[lsb:msb + 1] = value_fit
            env[name] = new_bits
            return
        raise SynthError(f"line {stmt.line}: unsupported assignment target")

    def _current_value(self, scope: Scope, signal: Signal,
                       env: Dict[str, object], is_ff: bool) -> List[int]:
        if signal.name in env:
            return list(env[signal.name])
        if is_ff:
            return list(signal.bits)
        raise SynthError(f"{signal.qualified}: partial comb assignment "
                         f"before full initialization")

    def _merge_env(self, scope: Scope, env: Dict[str, object], cond: int,
                   then_env: Dict[str, object], else_env: Dict[str, object],
                   targets: Set[str], is_ff: bool) -> None:
        for name in targets:
            in_then = name in then_env
            in_else = name in else_env
            if not in_then and not in_else:
                continue
            signal = self._lookup(scope, name)
            if signal.is_array:
                base = env.get(name)
                if base is None:
                    base = [list(bits) for bits in signal.elem_bits]
                then_val = then_env.get(name, base)
                else_val = else_env.get(name, base)
                merged = [self._g.mux_vec(cond, list(t), list(e))
                          for t, e in zip(then_val, else_val)]
                env[name] = merged
                continue
            if is_ff:
                fallback = list(signal.bits)
            else:
                fallback = env.get(name)
            then_val = then_env.get(name, fallback)
            else_val = else_env.get(name, fallback)
            if then_val is None or else_val is None:
                raise SynthError(f"{signal.qualified}: not assigned on all "
                                 f"paths of always_comb (latch inferred)")
            env[name] = self._g.mux_vec(cond, list(then_val), list(else_val))

    def _index_equals(self, index_bits: List[int], value: int) -> int:
        width = max(len(index_bits), value.bit_length() or 1)
        return self._g.eq_vec(self._fit(list(index_bits), width),
                              self._g.const_vec(value, width))

    # -- expression evaluation --------------------------------------------------
    def _fit(self, bits: List[int], width: int) -> List[int]:
        if len(bits) >= width:
            return bits[:width]
        return bits + [FALSE] * (width - len(bits))

    def _to_bool(self, bits: List[int]) -> int:
        return self._g.or_many(bits)

    def _eval(self, scope: Scope, expr: ast.Expr,
              env: Optional[Dict[str, object]] = None,
              comb_targets: Optional[Set[str]] = None) -> List[int]:
        g = self._g

        def recurse(node: ast.Expr) -> List[int]:
            return self._eval(scope, node, env=env, comb_targets=comb_targets)

        if isinstance(expr, ast.Num):
            width = expr.width or 32
            return g.const_vec(expr.value, width)
        if isinstance(expr, ast.Id):
            name = expr.name
            if name in scope.params:
                return g.const_vec(scope.params[name], 32)
            if env is not None and name in env:
                value = env[name]
                if not isinstance(value, list) or (value and
                                                   isinstance(value[0], list)):
                    raise SynthError(f"{scope.qualify(name)}: array read "
                                     f"without index")
                return list(value)
            if comb_targets is not None and name in comb_targets:
                raise SynthError(f"{scope.qualify(name)}: read before "
                                 f"assignment in always_comb")
            return list(self.signal_bits(scope, name, expr.line))
        if isinstance(expr, ast.Unary):
            return self._eval_unary(scope, expr, recurse)
        if isinstance(expr, ast.Binary):
            return self._eval_binary(scope, expr, recurse)
        if isinstance(expr, ast.Ternary):
            cond = self._to_bool(recurse(expr.cond))
            then_bits = recurse(expr.then_expr)
            else_bits = recurse(expr.else_expr)
            width = max(len(then_bits), len(else_bits))
            return g.mux_vec(cond, self._fit(then_bits, width),
                             self._fit(else_bits, width))
        if isinstance(expr, ast.Concat):
            bits: List[int] = []
            for part in reversed(expr.parts):
                bits.extend(recurse(part))
            return bits
        if isinstance(expr, ast.Repl):
            count = const_eval(expr.count, scope.params)
            unit = recurse(expr.value)
            return list(unit) * count
        if isinstance(expr, ast.Index):
            return self._eval_index(scope, expr, recurse, env, comb_targets)
        if isinstance(expr, ast.RangeSelect):
            base = recurse(expr.base)
            msb = const_eval(expr.msb, scope.params)
            lsb = const_eval(expr.lsb, scope.params)
            if lsb < 0 or msb >= len(base) or msb < lsb:
                raise SynthError(f"line {expr.line}: slice [{msb}:{lsb}] out "
                                 f"of range for width {len(base)}")
            return base[lsb:msb + 1]
        if isinstance(expr, ast.SysCall):
            return self._eval_syscall(scope, expr, recurse)
        raise SynthError(f"line {getattr(expr, 'line', 0)}: expression "
                         f"{type(expr).__name__} not allowed here")

    def _eval_index(self, scope: Scope, expr: ast.Index, recurse,
                    env, comb_targets) -> List[int]:
        if isinstance(expr.base, ast.Id):
            name = expr.base.name
            signal = scope.signals.get(name)
            if signal is not None and signal.is_array:
                elems = None
                if env is not None and name in env:
                    elems = env[name]
                if elems is None:
                    elems = self.array_elem_bits(scope, name, expr.line)
                index_bits = recurse(expr.index)
                out = []
                for bit_idx in range(signal.width):
                    terms = []
                    for idx in range(signal.size):
                        hit = self._index_equals(index_bits, idx)
                        terms.append(self._g.AND(hit, elems[idx][bit_idx]))
                    out.append(self._g.or_many(terms))
                return out
        base = recurse(expr.base)
        try:
            const_idx = const_eval(expr.index, scope.params)
        except ElabError:
            const_idx = None
        if const_idx is not None:
            if const_idx < 0 or const_idx >= len(base):
                raise SynthError(f"line {expr.line}: bit index {const_idx} "
                                 f"out of range")
            return [base[const_idx]]
        index_bits = recurse(expr.index)
        terms = []
        for idx, bit in enumerate(base):
            hit = self._index_equals(index_bits, idx)
            terms.append(self._g.AND(hit, bit))
        return [self._g.or_many(terms)]

    def _eval_unary(self, scope: Scope, expr: ast.Unary, recurse) -> List[int]:
        g = self._g
        bits = recurse(expr.operand)
        if expr.op == "!":
            return [g.NOT(self._to_bool(bits))]
        if expr.op == "~":
            return [b ^ 1 for b in bits]
        if expr.op == "&":
            return [g.and_many(bits)]
        if expr.op == "|":
            return [g.or_many(bits)]
        if expr.op == "^":
            out = FALSE
            for bit in bits:
                out = g.XOR(out, bit)
            return [out]
        if expr.op == "+":
            return bits
        if expr.op == "-":
            zero = g.const_vec(0, len(bits))
            return g.sub_vec(zero, bits)
        raise SynthError(f"line {expr.line}: unary {expr.op!r} unsupported")

    def _eval_binary(self, scope: Scope, expr: ast.Binary, recurse) -> List[int]:
        g = self._g
        op = expr.op
        if op == "&&":
            return [g.AND(self._to_bool(recurse(expr.lhs)),
                          self._to_bool(recurse(expr.rhs)))]
        if op == "||":
            return [g.OR(self._to_bool(recurse(expr.lhs)),
                         self._to_bool(recurse(expr.rhs)))]
        lhs = recurse(expr.lhs)
        rhs = recurse(expr.rhs)
        if op in ("<<", ">>", "<<<", ">>>"):
            return self._eval_shift(scope, expr, lhs, rhs)
        if op in ("*", "/", "%"):
            try:
                rhs_const = const_eval(expr.rhs, scope.params)
            except ElabError:
                raise SynthError(f"line {expr.line}: {op} requires a "
                                 f"constant right operand")
            return self._eval_mult_div(expr, lhs, rhs_const)
        width = max(len(lhs), len(rhs))
        lhs = self._fit(list(lhs), width)
        rhs = self._fit(list(rhs), width)
        if op in ("==", "==="):
            return [g.eq_vec(lhs, rhs)]
        if op in ("!=", "!=="):
            return [g.NOT(g.eq_vec(lhs, rhs))]
        if op == "<":
            return [g.ult_vec(lhs, rhs)]
        if op == ">":
            return [g.ult_vec(rhs, lhs)]
        if op == "<=":
            return [g.NOT(g.ult_vec(rhs, lhs))]
        if op == ">=":
            return [g.NOT(g.ult_vec(lhs, rhs))]
        if op == "&":
            return [g.AND(a, b) for a, b in zip(lhs, rhs)]
        if op == "|":
            return [g.OR(a, b) for a, b in zip(lhs, rhs)]
        if op == "^":
            return [g.XOR(a, b) for a, b in zip(lhs, rhs)]
        if op == "+":
            return g.add_vec(lhs, rhs)
        if op == "-":
            return g.sub_vec(lhs, rhs)
        raise SynthError(f"line {expr.line}: binary {op!r} unsupported")

    def _eval_shift(self, scope: Scope, expr: ast.Binary, lhs: List[int],
                    rhs: List[int]) -> List[int]:
        g = self._g
        width = len(lhs)
        left = expr.op in ("<<", "<<<")
        try:
            amount = const_eval(expr.rhs, scope.params)
        except ElabError:
            amount = None
        if amount is not None:
            if left:
                return ([FALSE] * min(amount, width) + list(lhs))[:width]
            return (list(lhs[amount:]) + [FALSE] * min(amount, width))[:width]
        # Dynamic barrel shifter.
        bits = list(lhs)
        for stage, sel in enumerate(rhs):
            shift = 1 << stage
            if shift >= width and stage >= width.bit_length():
                # Larger shifts zero everything when sel is set.
                bits = [g.MUX(sel, FALSE, b) for b in bits]
                continue
            if left:
                shifted = [FALSE] * min(shift, width) + bits
                shifted = shifted[:width]
            else:
                shifted = bits[shift:] + [FALSE] * min(shift, width)
                shifted = shifted[:width]
            bits = g.mux_vec(sel, shifted, bits)
        return bits

    def _eval_mult_div(self, expr: ast.Binary, lhs: List[int],
                       rhs_const: int) -> List[int]:
        g = self._g
        if expr.op == "*":
            width = len(lhs)
            acc = g.const_vec(0, width)
            shifted = list(lhs)
            value = rhs_const
            pos = 0
            while value:
                if value & 1:
                    addend = ([FALSE] * pos + list(lhs))[:width]
                    acc = g.add_vec(acc, addend)
                value >>= 1
                pos += 1
            return acc
        if expr.op == "%":
            if rhs_const <= 0 or rhs_const & (rhs_const - 1):
                raise SynthError(f"line {expr.line}: % only by powers of 2")
            keep = rhs_const.bit_length() - 1
            return list(lhs[:keep]) or [FALSE]
        # division by power of two = right shift
        if rhs_const <= 0 or rhs_const & (rhs_const - 1):
            raise SynthError(f"line {expr.line}: / only by powers of 2")
        shift = rhs_const.bit_length() - 1
        return list(lhs[shift:]) + [FALSE] * shift

    # -- $system calls ------------------------------------------------------
    def _eval_syscall(self, scope: Scope, expr: ast.SysCall,
                      recurse) -> List[int]:
        g = self._g
        name = expr.name
        if name == "$clog2":
            return g.const_vec(const_eval(expr, scope.params), 32)
        if name == "$past":
            if not expr.args:
                raise SynthError(f"line {expr.line}: $past needs an argument")
            cycles = 1
            if len(expr.args) > 1:
                cycles = const_eval(expr.args[1], scope.params)
            return self._past_bits(scope, expr.args[0], cycles, recurse)
        if name == "$stable":
            bits = recurse(expr.args[0])
            past = self._past_bits(scope, expr.args[0], 1, recurse)
            return [g.eq_vec(bits, past)]
        if name == "$rose":
            bits = recurse(expr.args[0])
            past = self._past_bits(scope, expr.args[0], 1, recurse)
            return [g.AND(bits[0], g.NOT(past[0]))]
        if name == "$fell":
            bits = recurse(expr.args[0])
            past = self._past_bits(scope, expr.args[0], 1, recurse)
            return [g.AND(g.NOT(bits[0]), past[0])]
        if name == "$isunknown":
            return [FALSE]  # formal is two-valued
        if name == "$initstate":
            return [self._first_cycle_node()]
        if name == "$countones":
            bits = recurse(expr.args[0])
            width = max(1, len(bits).bit_length())
            acc = g.const_vec(0, width)
            for bit in bits:
                acc = g.add_vec(acc, self._fit([bit], width))
            return acc
        if name == "$onehot":
            count = self._eval_syscall(
                scope, ast.SysCall(name="$countones", args=expr.args,
                                   line=expr.line), recurse)
            return [g.eq_vec(count, g.const_vec(1, len(count)))]
        if name == "$onehot0":
            count = self._eval_syscall(
                scope, ast.SysCall(name="$countones", args=expr.args,
                                   line=expr.line), recurse)
            one_or_less = g.NOT(g.ult_vec(g.const_vec(1, len(count)), count))
            return [one_or_less]
        if name in ("$signed", "$unsigned"):
            return recurse(expr.args[0])
        raise SynthError(f"line {expr.line}: {name} unsupported")

    def _past_bits(self, scope: Scope, arg: ast.Expr, cycles: int,
                   recurse) -> List[int]:
        key = (scope.prefix, f"{expr_key(arg)}#{cycles}")
        cached = self._past_cache.get(key)
        if cached is not None:
            return [lat.node for lat in cached]
        bits = recurse(arg)
        stage_bits = bits
        latches: List[Latch] = []
        for cycle in range(cycles):
            stage_key = (scope.prefix, f"{expr_key(arg)}#{cycle + 1}")
            if stage_key in self._past_cache:
                latches = self._past_cache[stage_key]
            else:
                latches = [
                    self.ts.add_latch(
                        f"{scope.prefix}$past{cycle + 1}({expr_key(arg)})"
                        f"[{i}]", init=False)
                    for i in range(len(bits))
                ]
                for lat, bit in zip(latches, stage_bits):
                    self.ts.set_next(lat, bit)
                self._past_cache[stage_key] = latches
            stage_bits = [lat.node for lat in latches]
        return stage_bits

    def _first_cycle_node(self) -> int:
        if self._first_cycle is None:
            self._first_cycle = self.ts.add_latch("$initstate", init=True)
            self.ts.set_next(self._first_cycle, FALSE)
        return self._first_cycle.node

    # -- assertion compilation ------------------------------------------------
    def _compile_assertion(self, scope: Scope, item: ast.AssertionItem) -> None:
        label = item.label or f"{item.directive}_{item.line}"
        qualified = f"{scope.prefix}{label}"
        g = self._g
        disable_lit = FALSE
        if item.disable_iff is not None:
            disable_lit = self._to_bool(self._eval(scope, item.disable_iff))

        kind, payload = self._compile_property(scope, item.prop, label)
        if kind == "safety":
            lit = payload
            if disable_lit != FALSE:
                lit = g.OR(disable_lit, lit)
            if item.directive == "assert":
                self.ts.add_assert(qualified, lit)
            elif item.directive in ("assume", "restrict"):
                self.ts.add_constraint(qualified, lit)
            elif item.directive == "cover":
                cover_lit = lit if disable_lit == FALSE else \
                    g.AND(g.NOT(disable_lit), payload)
                self.ts.add_cover(qualified, cover_lit)
            return
        # Liveness: payload = (trigger, discharge, same_cycle)
        trigger, discharge, same_cycle = payload
        if disable_lit != FALSE:
            discharge = g.OR(discharge, disable_lit)
        if item.directive == "cover":
            raise SynthError(f"{qualified}: cover of liveness unsupported")
        pending = self.ts.pending_monitor(qualified, trigger, discharge,
                                          same_cycle=same_cycle)
        justice = g.NOT(pending)
        if item.directive == "assert":
            self.ts.add_liveness(qualified, justice)
        else:
            self.ts.add_fairness(qualified, justice)

    def _compile_property(self, scope: Scope, prop: ast.Expr, label: str):
        g = self._g
        if isinstance(prop, ast.Delay):
            kind, payload = self._compile_property(scope, prop.expr, label)
            guard = self._delay_guard(prop.cycles)
            if kind == "safety":
                return "safety", g.OR(guard, payload)
            trigger, discharge, same_cycle = payload
            return "liveness", (g.AND(g.NOT(guard), trigger), discharge,
                                same_cycle)
        if isinstance(prop, ast.Implication):
            ante = self._to_bool(self._eval(scope, prop.antecedent))
            consequent = prop.consequent
            if isinstance(consequent, ast.SEventually):
                discharge = self._to_bool(self._eval(scope, consequent.expr))
                same_cycle = prop.op == "|->"
                return "liveness", (ante, discharge, same_cycle)
            if isinstance(consequent, (ast.Implication, ast.Delay)):
                raise SynthError(f"{label}: nested implication/delay in "
                                 f"consequent unsupported")
            cons = self._to_bool(self._eval(scope, consequent))
            if prop.op == "|->":
                return "safety", g.IMPLIES(ante, cons)
            # |=>: check the consequent one cycle after the antecedent.
            ante_latch = self.ts.add_latch(
                f"{scope.prefix}{label}__ante_past", init=False)
            self.ts.set_next(ante_latch, ante)
            return "safety", g.IMPLIES(ante_latch.node, cons)
        if isinstance(prop, ast.SEventually):
            raise SynthError(f"{label}: bare s_eventually without a "
                             f"triggering antecedent is unsupported")
        lit = self._to_bool(self._eval(scope, prop))
        return "safety", lit

    def _delay_guard(self, cycles: int) -> int:
        """A literal that is TRUE during the first ``cycles`` cycles."""
        guard = self._first_cycle_node()
        nodes = [guard]
        previous = self._first_cycle
        for stage in range(1, cycles):
            lat = self.ts.add_latch(f"$initstage{stage}", init=False)
            self.ts.set_next(lat, previous.node)
            nodes.append(lat.node)
            previous = lat
        return self._g.or_many(nodes)

    # -- observables --------------------------------------------------------
    def _register_observables(self, top_scope: Scope) -> None:
        seen_bits = set()

        def add(qualified: str, bits: List[int]) -> None:
            key = tuple(bits)
            if key in seen_bits:
                return  # alias of an already-registered signal
            seen_bits.add(key)
            self.ts.add_observable(qualified, bits)

        for port in top_scope.module.ports:
            signal = top_scope.signals[port.name]
            try:
                bits = self.signal_bits(top_scope, port.name)
            except SynthError:
                continue
            add(signal.qualified, bits)
        # Internal and checker-scope signals complete the waveform.
        for scope in self._scopes:
            for name, signal in scope.signals.items():
                if signal.is_array:
                    continue
                try:
                    bits = self.signal_bits(scope, name)
                except SynthError:
                    continue
                add(signal.qualified, bits)


def synthesize(source: str, top: str,
               param_overrides: Optional[Dict[str, int]] = None,
               defines: Tuple[str, ...] = (),
               extra_sources: Tuple[str, ...] = (),
               tie_resets: bool = True) -> TransitionSystem:
    """One-call helper: preprocess, parse, merge and synthesize sources."""
    design = parse_design(strip_ifdefs(source, defines))
    for extra in extra_sources:
        design = design.merge(parse_design(strip_ifdefs(extra, defines)))
    return Synthesizer(design, top, param_overrides=param_overrides,
                       tie_resets=tie_resets).build()
