"""Elaboration helpers: constant evaluation and width resolution.

Parameters, range bounds and replication counts must be compile-time
constants.  :func:`const_eval` folds the expression subset over a parameter
environment; :func:`range_width` turns a packed/unpacked range into a size.
"""

from __future__ import annotations

from typing import Dict, Optional

from . import ast

__all__ = ["ElabError", "const_eval", "range_width", "range_bounds", "clog2"]


class ElabError(ValueError):
    """Raised for design errors found during elaboration/synthesis."""


def clog2(value: int) -> int:
    """Ceiling log2 as defined by SystemVerilog $clog2 (``$clog2(1) == 0``)."""
    if value <= 1:
        return 0
    result = 0
    value -= 1
    while value > 0:
        value >>= 1
        result += 1
    return result


def const_eval(expr: ast.Expr, params: Dict[str, int]) -> int:
    """Evaluate a compile-time-constant expression to a Python int."""
    if isinstance(expr, ast.Num):
        return expr.value
    if isinstance(expr, ast.Id):
        if expr.name not in params:
            raise ElabError(f"line {expr.line}: {expr.name!r} is not a "
                            f"parameter (constant context)")
        return params[expr.name]
    if isinstance(expr, ast.Unary):
        val = const_eval(expr.operand, params)
        if expr.op == "-":
            return -val
        if expr.op == "+":
            return val
        if expr.op == "!":
            return 0 if val else 1
        if expr.op == "~":
            return ~val
        raise ElabError(f"line {expr.line}: unary {expr.op!r} not constant")
    if isinstance(expr, ast.Binary):
        lhs = const_eval(expr.lhs, params)
        rhs = const_eval(expr.rhs, params)
        ops = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "/": lambda a, b: a // b,
            "%": lambda a, b: a % b,
            "<<": lambda a, b: a << b,
            ">>": lambda a, b: a >> b,
            "==": lambda a, b: int(a == b),
            "!=": lambda a, b: int(a != b),
            "<": lambda a, b: int(a < b),
            "<=": lambda a, b: int(a <= b),
            ">": lambda a, b: int(a > b),
            ">=": lambda a, b: int(a >= b),
            "&&": lambda a, b: int(bool(a) and bool(b)),
            "||": lambda a, b: int(bool(a) or bool(b)),
            "&": lambda a, b: a & b,
            "|": lambda a, b: a | b,
            "^": lambda a, b: a ^ b,
        }
        if expr.op not in ops:
            raise ElabError(f"line {expr.line}: binary {expr.op!r} "
                            f"not constant-foldable")
        return ops[expr.op](lhs, rhs)
    if isinstance(expr, ast.Ternary):
        cond = const_eval(expr.cond, params)
        branch = expr.then_expr if cond else expr.else_expr
        return const_eval(branch, params)
    if isinstance(expr, ast.SysCall):
        if expr.name == "$clog2" and len(expr.args) == 1:
            return clog2(const_eval(expr.args[0], params))
        raise ElabError(f"line {expr.line}: {expr.name} not constant")
    raise ElabError(f"non-constant expression {type(expr).__name__}")


def range_bounds(rng: Optional[ast.Range],
                 params: Dict[str, int]) -> "tuple[int, int]":
    """Resolve a range to (msb, lsb); a missing range is the scalar (0, 0)."""
    if rng is None:
        return (0, 0)
    return (const_eval(rng.msb, params), const_eval(rng.lsb, params))


def range_width(rng: Optional[ast.Range], params: Dict[str, int]) -> int:
    """Width of a packed range (scalar = 1)."""
    msb, lsb = range_bounds(rng, params)
    if msb < lsb:
        raise ElabError(f"descending range [{msb}:{lsb}] unsupported")
    return msb - lsb + 1


def array_size(rng: Optional[ast.Range], params: Dict[str, int]) -> int:
    """Element count of an unpacked range, accepting [0:N-1] or [N-1:0]."""
    if rng is None:
        return 0
    msb, lsb = range_bounds(rng, params)
    return abs(msb - lsb) + 1
