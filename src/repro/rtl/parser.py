"""Recursive-descent parser for the SystemVerilog subset.

Produces the :mod:`repro.rtl.ast` node tree.  Entry points:

* :func:`parse_design` — full source text with modules and binds;
* :func:`parse_expr_text` — a single expression (used by the AutoSVA core to
  validate explicit-definition right-hand sides).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from . import ast
from .lexer import Lexer, Token

__all__ = ["ParseError", "Parser", "parse_design", "parse_expr_text"]


class ParseError(ValueError):
    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"line {token.line}: {message} (at {token.value!r})")
        self.token = token


class Parser:
    def __init__(self, text: str, filename: str = "<rtl>") -> None:
        self.tokens = Lexer(text, filename).tokenize()
        self.pos = 0
        self.filename = filename

    # -- token helpers ------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _next(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def _check(self, kind: str, value: Optional[str] = None) -> bool:
        token = self._peek()
        if token.kind != kind:
            return False
        return value is None or token.value == value

    def _accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, value):
            return self._next()
        return None

    def _expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self._peek()
        if not self._check(kind, value):
            want = value or kind
            raise ParseError(f"expected {want!r}", token)
        return self._next()

    # -- design level -------------------------------------------------------
    def parse_design(self) -> ast.Design:
        design = ast.Design()
        while not self._check("eof"):
            if self._check("keyword", "module"):
                design.modules.append(self.parse_module())
            elif self._check("keyword", "bind"):
                design.binds.append(self.parse_bind())
            else:
                raise ParseError("expected 'module' or 'bind'", self._peek())
        return design

    def parse_bind(self) -> ast.Bind:
        start = self._expect("keyword", "bind")
        target = self._expect("id").value
        checker = self._expect("id").value
        params: List[Tuple[str, ast.Expr]] = []
        if self._accept("punct", "#"):
            self._expect("punct", "(")
            params = self._parse_named_overrides()
            self._expect("punct", ")")
        inst_name = self._expect("id").value
        self._expect("punct", "(")
        connections = self._parse_connections()
        self._expect("punct", ")")
        self._expect("punct", ";")
        return ast.Bind(target_module=target, checker_module=checker,
                        instance_name=inst_name, param_overrides=params,
                        connections=connections, line=start.line)

    # -- module -------------------------------------------------------------
    def parse_module(self) -> ast.Module:
        start = self._expect("keyword", "module")
        name = self._expect("id").value
        module = ast.Module(name=name, line=start.line)
        if self._accept("punct", "#"):
            self._expect("punct", "(")
            module.params.extend(self._parse_param_port_list())
            self._expect("punct", ")")
        if self._accept("punct", "("):
            if not self._check("punct", ")"):
                module.ports.extend(self._parse_ansi_ports())
            self._expect("punct", ")")
        self._expect("punct", ";")
        while not self._check("keyword", "endmodule"):
            self._parse_module_item(module)
        self._expect("keyword", "endmodule")
        return module

    def _parse_param_port_list(self) -> List[ast.ParamDecl]:
        params = []
        while True:
            self._accept("keyword", "parameter") or self._accept(
                "keyword", "localparam")
            # optional type keywords before the name
            while self._check("keyword", "integer") or self._check(
                    "keyword", "logic") or self._check("keyword", "signed"):
                self._next()
            if self._check("punct", "["):
                self._parse_range()  # typed params: range is cosmetic here
            token = self._expect("id")
            self._expect("punct", "=")
            default = self.parse_expr()
            params.append(ast.ParamDecl(name=token.value, default=default,
                                        line=token.line))
            if not self._accept("punct", ","):
                return params

    def _parse_ansi_ports(self) -> List[ast.Port]:
        ports: List[ast.Port] = []
        direction = None
        net_type = "wire"
        packed: Optional[ast.Range] = None
        while True:
            token = self._peek()
            if token.kind == "keyword" and token.value in ("input", "output",
                                                           "inout"):
                direction = self._next().value
                net_type = "wire"
                packed = None
                if self._check("keyword"):
                    if self._peek().value in ("wire", "reg", "logic"):
                        net_type = self._next().value
                    if self._check("keyword", "signed"):
                        self._next()
                if self._check("punct", "["):
                    packed = self._parse_range()
            elif token.kind == "punct" and token.value == "[":
                packed = self._parse_range()
            if direction is None:
                raise ParseError("port without direction", token)
            name_token = self._expect("id")
            ports.append(ast.Port(direction=direction, name=name_token.value,
                                  packed=packed, net_type=net_type,
                                  line=name_token.line))
            if not self._accept("punct", ","):
                return ports

    def _parse_range(self) -> ast.Range:
        self._expect("punct", "[")
        msb = self.parse_expr()
        self._expect("punct", ":")
        lsb = self.parse_expr()
        self._expect("punct", "]")
        return ast.Range(msb=msb, lsb=lsb)

    # -- module items -------------------------------------------------------
    def _parse_module_item(self, module: ast.Module) -> None:
        token = self._peek()
        if token.kind == "keyword":
            keyword = token.value
            if keyword in ("parameter", "localparam"):
                self._parse_param_decl(module)
                return
            if keyword in ("wire", "reg", "logic", "integer"):
                module.nets.extend(self._parse_net_decl())
                return
            if keyword == "assign":
                module.assigns.extend(self._parse_assign())
                return
            if keyword in ("always_ff", "always"):
                self._parse_always(module)
                return
            if keyword == "always_comb":
                self._next()
                body = self._parse_stmt()
                module.always_combs.append(
                    ast.AlwaysComb(body=body, line=token.line))
                return
            if keyword in ("assert", "assume", "cover", "restrict"):
                module.assertions.append(self._parse_assertion(label=""))
                return
            if keyword in ("input", "output"):
                # non-ANSI port declaration bodies are out of subset
                raise ParseError("non-ANSI port declarations unsupported",
                                 token)
            raise ParseError("unsupported module item", token)
        if token.kind == "id":
            # Either a label for an assertion, or an instantiation.
            if self._peek(1).kind == "punct" and self._peek(1).value == ":":
                label = self._next().value
                self._expect("punct", ":")
                module.assertions.append(self._parse_assertion(label=label))
                return
            module.instances.append(self._parse_instance())
            return
        raise ParseError("unsupported module item", token)

    def _parse_param_decl(self, module: ast.Module) -> None:
        is_local = self._next().value == "localparam"
        while self._check("keyword") and self._peek().value in (
                "integer", "logic", "signed"):
            self._next()
        if self._check("punct", "["):
            self._parse_range()
        while True:
            token = self._expect("id")
            self._expect("punct", "=")
            default = self.parse_expr()
            module.params.append(ast.ParamDecl(
                name=token.value, default=default, is_local=is_local,
                line=token.line))
            if not self._accept("punct", ","):
                break
        self._expect("punct", ";")

    def _parse_net_decl(self) -> List[ast.NetDecl]:
        net_type = self._next().value
        if self._check("keyword", "signed"):
            self._next()
        packed = self._parse_range() if self._check("punct", "[") else None
        decls: List[ast.NetDecl] = []
        while True:
            token = self._expect("id")
            unpacked = None
            if self._check("punct", "["):
                unpacked = self._parse_range()
            init = None
            if self._accept("punct", "="):
                init = self.parse_expr()
            decls.append(ast.NetDecl(name=token.value, net_type=net_type,
                                     packed=packed, unpacked=unpacked,
                                     init=init, line=token.line))
            if not self._accept("punct", ","):
                break
        self._expect("punct", ";")
        return decls

    def _parse_assign(self) -> List[ast.Assign]:
        self._expect("keyword", "assign")
        assigns = []
        while True:
            target = self._parse_postfix()
            self._expect("punct", "=")
            value = self.parse_expr()
            assigns.append(ast.Assign(target=target, value=value,
                                      line=getattr(target, "line", 0)))
            if not self._accept("punct", ","):
                break
        self._expect("punct", ";")
        return assigns

    def _parse_always(self, module: ast.Module) -> None:
        token = self._next()  # always / always_ff
        self._expect("punct", "@")
        self._expect("punct", "(")
        if self._accept("punct", "*"):
            self._expect("punct", ")")
            body = self._parse_stmt()
            module.always_combs.append(ast.AlwaysComb(body=body,
                                                      line=token.line))
            return
        self._expect("keyword", "posedge")
        clock = self._expect("id").value
        reset_name = None
        reset_active_low = True
        if self._accept("keyword", "or"):
            edge = self._next()
            if edge.value not in ("negedge", "posedge"):
                raise ParseError("expected reset edge", edge)
            reset_active_low = edge.value == "negedge"
            reset_name = self._expect("id").value
        self._expect("punct", ")")
        body = self._parse_stmt()
        module.always_ffs.append(ast.AlwaysFF(
            clock=clock, body=body, reset_name=reset_name,
            reset_active_low=reset_active_low, line=token.line))

    def _parse_instance(self) -> ast.Instance:
        mod_token = self._expect("id")
        params: List[Tuple[str, ast.Expr]] = []
        if self._accept("punct", "#"):
            self._expect("punct", "(")
            params = self._parse_named_overrides()
            self._expect("punct", ")")
        inst_name = self._expect("id").value
        self._expect("punct", "(")
        connections = self._parse_connections()
        self._expect("punct", ")")
        self._expect("punct", ";")
        return ast.Instance(module_name=mod_token.value,
                            instance_name=inst_name,
                            param_overrides=params,
                            connections=connections, line=mod_token.line)

    def _parse_named_overrides(self) -> List[Tuple[str, ast.Expr]]:
        overrides = []
        while True:
            self._expect("punct", ".")
            name = self._expect("id").value
            self._expect("punct", "(")
            value = self.parse_expr()
            self._expect("punct", ")")
            overrides.append((name, value))
            if not self._accept("punct", ","):
                return overrides

    def _parse_connections(self) -> List[Tuple[str, Optional[ast.Expr]]]:
        connections: List[Tuple[str, Optional[ast.Expr]]] = []
        if self._check("punct", ")"):
            return connections
        while True:
            self._expect("punct", ".")
            if self._accept("punct", "*"):
                connections.append(("*", None))
            else:
                name = self._expect("id").value
                if self._accept("punct", "("):
                    expr: Optional[ast.Expr] = None  # () = open connection
                    if not self._check("punct", ")"):
                        expr = self.parse_expr()
                    self._expect("punct", ")")
                    connections.append((name, expr))
                else:
                    # .name shorthand
                    connections.append((name, ast.Id(name=name)))
            if not self._accept("punct", ","):
                return connections

    # -- statements -----------------------------------------------------------
    def _parse_stmt(self) -> ast.Stmt:
        token = self._peek()
        if token.kind == "keyword":
            if token.value == "begin":
                self._next()
                # optional block label
                if self._accept("punct", ":"):
                    self._expect("id")
                block = ast.Block(line=token.line)
                while not self._check("keyword", "end"):
                    block.stmts.append(self._parse_stmt())
                self._expect("keyword", "end")
                if self._accept("punct", ":"):
                    self._expect("id")
                return block
            if token.value == "if":
                return self._parse_if()
            if token.value in ("unique", "priority"):
                self._next()
                token = self._peek()
            if token.value in ("case", "casez", "casex"):
                return self._parse_case()
        # assignment statement
        target = self._parse_postfix()
        if self._accept("punct", "<="):
            value = self.parse_expr()
            self._expect("punct", ";")
            return ast.NonBlocking(target=target, value=value,
                                   line=token.line)
        self._expect("punct", "=")
        value = self.parse_expr()
        self._expect("punct", ";")
        return ast.Blocking(target=target, value=value, line=token.line)

    def _parse_if(self) -> ast.If:
        token = self._expect("keyword", "if")
        self._expect("punct", "(")
        cond = self.parse_expr()
        self._expect("punct", ")")
        then_stmt = self._parse_stmt()
        else_stmt = None
        if self._accept("keyword", "else"):
            else_stmt = self._parse_stmt()
        return ast.If(cond=cond, then_stmt=then_stmt, else_stmt=else_stmt,
                      line=token.line)

    def _parse_case(self) -> ast.Case:
        token = self._next()  # case/casez/casex
        self._expect("punct", "(")
        subject = self.parse_expr()
        self._expect("punct", ")")
        items: List[ast.CaseItem] = []
        while not self._check("keyword", "endcase"):
            if self._accept("keyword", "default"):
                self._accept("punct", ":")
                stmt = self._parse_stmt()
                items.append(ast.CaseItem(labels=[], stmt=stmt))
                continue
            labels = [self.parse_expr()]
            while self._accept("punct", ","):
                labels.append(self.parse_expr())
            self._expect("punct", ":")
            stmt = self._parse_stmt()
            items.append(ast.CaseItem(labels=labels, stmt=stmt))
        self._expect("keyword", "endcase")
        return ast.Case(subject=subject, items=items, line=token.line)

    # -- assertions ------------------------------------------------------------
    def _parse_assertion(self, label: str) -> ast.AssertionItem:
        directive_token = self._next()
        directive = directive_token.value
        self._expect("keyword", "property")
        self._expect("punct", "(")
        clock = None
        disable_iff = None
        if self._accept("punct", "@"):
            self._expect("punct", "(")
            self._expect("keyword", "posedge")
            clock = self._expect("id").value
            self._expect("punct", ")")
        if self._accept("keyword", "disable"):
            self._expect("keyword", "iff")
            self._expect("punct", "(")
            disable_iff = self.parse_expr()
            self._expect("punct", ")")
        prop = self.parse_property_expr()
        self._expect("punct", ")")
        self._expect("punct", ";")
        return ast.AssertionItem(directive=directive, label=label, prop=prop,
                                 clock=clock, disable_iff=disable_iff,
                                 line=directive_token.line)

    def parse_property_expr(self) -> ast.Expr:
        """Property-level grammar: optional leading ##N, implication with an
        optionally ``s_eventually``-wrapped consequent."""
        token = self._peek()
        if token.kind == "punct" and token.value == "##":
            self._next()
            cycles = int(self._expect("number").value)
            inner = self.parse_property_expr()
            return ast.Delay(cycles=cycles, expr=inner, line=token.line)
        if token.kind == "keyword" and token.value == "s_eventually":
            self._next()
            inner = self.parse_expr()
            return ast.SEventually(expr=inner, line=token.line)
        antecedent = self.parse_expr()
        impl = self._peek()
        if impl.kind == "punct" and impl.value in ("|->", "|=>"):
            self._next()
            consequent = self.parse_property_expr()
            return ast.Implication(op=impl.value, antecedent=antecedent,
                                   consequent=consequent, line=impl.line)
        return antecedent

    # -- expressions -------------------------------------------------------------
    def parse_expr(self) -> ast.Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_logical_or()
        if self._accept("punct", "?"):
            then_expr = self._parse_ternary()
            self._expect("punct", ":")
            else_expr = self._parse_ternary()
            return ast.Ternary(cond=cond, then_expr=then_expr,
                               else_expr=else_expr,
                               line=getattr(cond, "line", 0))
        return cond

    def _binary_level(self, ops: Tuple[str, ...], next_level) -> ast.Expr:
        lhs = next_level()
        while self._peek().kind == "punct" and self._peek().value in ops:
            op = self._next().value
            rhs = next_level()
            lhs = ast.Binary(op=op, lhs=lhs, rhs=rhs,
                             line=getattr(lhs, "line", 0))
        return lhs

    def _parse_logical_or(self) -> ast.Expr:
        return self._binary_level(("||",), self._parse_logical_and)

    def _parse_logical_and(self) -> ast.Expr:
        return self._binary_level(("&&",), self._parse_bit_or)

    def _parse_bit_or(self) -> ast.Expr:
        return self._binary_level(("|",), self._parse_bit_xor)

    def _parse_bit_xor(self) -> ast.Expr:
        return self._binary_level(("^",), self._parse_bit_and)

    def _parse_bit_and(self) -> ast.Expr:
        return self._binary_level(("&",), self._parse_equality)

    def _parse_equality(self) -> ast.Expr:
        return self._binary_level(("==", "!=", "===", "!=="),
                                  self._parse_relational)

    def _parse_relational(self) -> ast.Expr:
        return self._binary_level(("<", "<=", ">", ">="), self._parse_shift)

    def _parse_shift(self) -> ast.Expr:
        return self._binary_level(("<<", ">>", "<<<", ">>>"),
                                  self._parse_additive)

    def _parse_additive(self) -> ast.Expr:
        return self._binary_level(("+", "-"), self._parse_multiplicative)

    def _parse_multiplicative(self) -> ast.Expr:
        return self._binary_level(("*", "/", "%"), self._parse_unary)

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind == "punct" and token.value in ("!", "~", "&", "|", "^",
                                                     "-", "+"):
            self._next()
            operand = self._parse_unary()
            return ast.Unary(op=token.value, operand=operand,
                             line=token.line)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self._check("punct", "["):
                self._next()
                first = self.parse_expr()
                if self._accept("punct", ":"):
                    lsb = self.parse_expr()
                    self._expect("punct", "]")
                    expr = ast.RangeSelect(base=expr, msb=first, lsb=lsb,
                                           line=getattr(expr, "line", 0))
                else:
                    self._expect("punct", "]")
                    expr = ast.Index(base=expr, index=first,
                                     line=getattr(expr, "line", 0))
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind == "number":
            self._next()
            return self._make_number(token)
        if token.kind == "id":
            self._next()
            name = token.value
            # Hierarchical / member / package-scoped names are kept as opaque
            # identifiers: "fu_data_i.fu", "riscv::VLEN".  Annotation
            # expressions in the paper use both forms (Figs. 3 and 7).
            while True:
                if self._check("punct", ".") and self._peek(1).kind == "id":
                    self._next()
                    name += "." + self._next().value
                elif self._check("punct", "::") and self._peek(1).kind == "id":
                    self._next()
                    name += "::" + self._next().value
                else:
                    break
            return ast.Id(name=name, line=token.line)
        if token.kind == "system":
            self._next()
            args: List[ast.Expr] = []
            if self._accept("punct", "("):
                if not self._check("punct", ")"):
                    args.append(self.parse_expr())
                    while self._accept("punct", ","):
                        args.append(self.parse_expr())
                self._expect("punct", ")")
            return ast.SysCall(name=token.value, args=args, line=token.line)
        if token.kind == "punct" and token.value == "(":
            self._next()
            expr = self.parse_expr()
            self._expect("punct", ")")
            return expr
        if token.kind == "punct" and token.value == "{":
            return self._parse_concat()
        if token.kind == "keyword" and token.value == "s_eventually":
            # nested s_eventually in parenthesized property context
            self._next()
            inner = self.parse_expr()
            return ast.SEventually(expr=inner, line=token.line)
        raise ParseError("expected expression", token)

    def _parse_concat(self) -> ast.Expr:
        open_token = self._expect("punct", "{")
        first = self.parse_expr()
        if self._check("punct", "{"):
            # replication {N{expr}}
            self._next()
            value = self.parse_expr()
            self._expect("punct", "}")
            self._expect("punct", "}")
            return ast.Repl(count=first, value=value, line=open_token.line)
        parts = [first]
        while self._accept("punct", ","):
            parts.append(self.parse_expr())
        self._expect("punct", "}")
        return ast.Concat(parts=parts, line=open_token.line)

    @staticmethod
    def _make_number(token: Token) -> ast.Num:
        text = token.value
        if "'" not in text:
            return ast.Num(value=int(text), width=None, line=token.line)
        size_text, _, rest = text.partition("'")
        width = int(size_text) if size_text else None
        base_ch = rest[0]
        digits = rest[1:].replace("_", "")
        if base_ch in "01xXzZ" and not digits:
            # fill literal '0 / '1 ('x/'z lowered to 0: formal has no X)
            bit = 1 if base_ch == "1" else 0
            return ast.Num(value=bit, width=width, is_fill=True,
                           line=token.line)
        base = {"b": 2, "o": 8, "d": 10, "h": 16}[base_ch]
        digits = digits.replace("?", "0").replace("x", "0").replace(
            "X", "0").replace("z", "0").replace("Z", "0")
        value = int(digits, base) if digits else 0
        return ast.Num(value=value, width=width, line=token.line)


def parse_design(text: str, filename: str = "<rtl>") -> ast.Design:
    """Parse source text containing modules and bind directives."""
    return Parser(text, filename).parse_design()


def parse_expr_text(text: str) -> ast.Expr:
    """Parse a standalone expression (annotation right-hand sides)."""
    parser = Parser(text, "<expr>")
    expr = parser.parse_expr()
    if not parser._check("eof"):
        raise ParseError("trailing input after expression", parser._peek())
    return expr
