"""Tokenizer for the SystemVerilog subset understood by the RTL frontend.

The subset is the meet of (a) what AutoSVA-generated property files contain —
plain SVA assertions plus auxiliary Verilog modeling code — and (b) what the
reduced Ariane/OpenPiton design corpus uses: ANSI module headers, parameters,
vector nets, unpacked arrays, assign, always_ff/always_comb, if/case,
instantiation and bind.

Comments are skipped here; the AutoSVA annotation scanner
(:mod:`repro.core.rtl_scan`) works on the raw source text instead, exactly as
the paper's tool does ("annotations are written as Verilog comments").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

__all__ = ["Token", "Lexer", "LexError", "KEYWORDS"]

KEYWORDS = {
    "module", "endmodule", "parameter", "localparam", "input", "output",
    "inout", "wire", "reg", "logic", "integer", "genvar", "assign",
    "always", "always_ff", "always_comb", "always_latch", "begin", "end",
    "if", "else", "case", "casez", "casex", "endcase", "default", "posedge",
    "negedge", "or", "and", "not", "assert", "assume", "cover", "restrict",
    "property", "endproperty", "sequence", "endsequence", "disable", "iff",
    "s_eventually", "eventually", "always_prop", "bind", "generate",
    "endgenerate", "for", "function", "endfunction", "initial", "signed",
    "unsigned", "unique", "priority",
}

_PUNCT = [
    # three-char
    "<<<", ">>>", "===", "!==", "|->", "|=>",
    # two-char
    "&&", "||", "==", "!=", "<=", ">=", "<<", ">>", "+:", "-:", "::", "##",
    "'{",
    # one-char
    "(", ")", "[", "]", "{", "}", ",", ";", ":", "?", "+", "-", "*", "/",
    "%", "&", "|", "^", "~", "!", "<", ">", "=", ".", "#", "@", "$", "'",
]


@dataclass
class Token:
    """A lexed token: ``kind`` is one of id/keyword/number/string/punct/eof."""

    kind: str
    value: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, L{self.line})"


class LexError(ValueError):
    """Raised on characters the subset does not include."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"line {line}:{col}: {message}")
        self.line = line
        self.col = col


class Lexer:
    """Single-pass tokenizer producing a list of :class:`Token`."""

    def __init__(self, text: str, filename: str = "<rtl>") -> None:
        self.text = text
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.col = 1

    def tokenize(self) -> List[Token]:
        tokens: List[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind == "eof":
                return tokens

    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.text[idx] if idx < len(self.text) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.text):
                if self.text[self.pos] == "\n":
                    self.line += 1
                    self.col = 1
                else:
                    self.col += 1
                self.pos += 1

    def _skip_trivia(self) -> None:
        while self.pos < len(self.text):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.text) and not (
                        self._peek() == "*" and self._peek(1) == "/"):
                    self._advance()
                self._advance(2)
            elif ch == "`":
                # Compiler directives (`define/`include) are out of subset;
                # macro *uses* like `XPROP are skipped as ifdef-guarded code
                # is pre-stripped by the caller. Treat the rest of the line
                # as trivia for robustness.
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        if self.pos >= len(self.text):
            return Token("eof", "", self.line, self.col)
        line, col = self.line, self.col
        ch = self._peek()

        if ch.isalpha() or ch == "_":
            return self._lex_word(line, col)
        if ch.isdigit():
            return self._lex_number(line, col)
        if ch == "'" and (self._peek(1).isalnum() or self._peek(1) == "_"):
            # unsized based literal like 'd5, 'h1F, '0, '1, 'x
            return self._lex_based(line, col, size="")
        if ch == '"':
            return self._lex_string(line, col)
        if ch == "$":
            return self._lex_system(line, col)
        for punct in _PUNCT:
            if self.text.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token("punct", punct, line, col)
        raise LexError(f"unexpected character {ch!r}", line, col)

    def _lex_word(self, line: int, col: int) -> Token:
        start = self.pos
        while self.pos < len(self.text) and (self._peek().isalnum()
                                             or self._peek() == "_"):
            self._advance()
        word = self.text[start:self.pos]
        kind = "keyword" if word in KEYWORDS else "id"
        return Token(kind, word, line, col)

    def _lex_number(self, line: int, col: int) -> Token:
        start = self.pos
        while self.pos < len(self.text) and (self._peek().isdigit()
                                             or self._peek() == "_"):
            self._advance()
        size = self.text[start:self.pos].replace("_", "")
        if self._peek() == "'":
            return self._lex_based(line, col, size=size)
        return Token("number", size, line, col)

    def _lex_based(self, line: int, col: int, size: str) -> Token:
        # consume ' [s] base digits  (e.g. 4'b1010, 'h_FF, '0)
        self._advance()  # '
        if self._peek() in "sS":
            self._advance()
        base_ch = self._peek()
        if base_ch in "01xXzZ" and not (self._peek(1).isalnum()
                                        or self._peek(1) == "_"):
            # '0 / '1 / 'x fill literals
            self._advance()
            return Token("number", f"{size}'{base_ch}", line, col)
        if base_ch not in "bBoOdDhH":
            raise LexError(f"bad base character {base_ch!r}", line, col)
        self._advance()
        start = self.pos
        while self.pos < len(self.text) and (self._peek().isalnum()
                                             or self._peek() in "_?xXzZ"):
            self._advance()
        digits = self.text[start:self.pos]
        if not digits:
            raise LexError("based literal with no digits", line, col)
        return Token("number", f"{size}'{base_ch.lower()}{digits}", line, col)

    def _lex_string(self, line: int, col: int) -> Token:
        self._advance()  # opening quote
        start = self.pos
        while self.pos < len(self.text) and self._peek() != '"':
            if self._peek() == "\\":
                self._advance()
            self._advance()
        value = self.text[start:self.pos]
        self._advance()  # closing quote
        return Token("string", value, line, col)

    def _lex_system(self, line: int, col: int) -> Token:
        self._advance()  # $
        start = self.pos
        while self.pos < len(self.text) and (self._peek().isalnum()
                                             or self._peek() == "_"):
            self._advance()
        name = self.text[start:self.pos]
        if not name:
            raise LexError("bare '$'", line, col)
        return Token("system", "$" + name, line, col)
