"""SystemVerilog-subset frontend: lexer, parser, elaboration, synthesis.

The frontend exists so that the formal testbenches AutoSVA generates (plain
SVA property files + bind files) and the evaluated RTL corpus can be compiled
and model-checked entirely offline.  :func:`repro.rtl.synth.synthesize` is
the one-call entry point from source text to a
:class:`~repro.formal.transition.TransitionSystem`.
"""

from . import ast
from .elaborate import ElabError, clog2, const_eval, range_width
from .lexer import LexError, Lexer, Token
from .parser import ParseError, Parser, parse_design, parse_expr_text
from .preprocess import strip_ifdefs
from .synth import SynthError, Synthesizer, expr_key, synthesize

__all__ = [
    "ast",
    "ElabError", "clog2", "const_eval", "range_width",
    "LexError", "Lexer", "Token",
    "ParseError", "Parser", "parse_design", "parse_expr_text",
    "strip_ifdefs",
    "SynthError", "Synthesizer", "expr_key", "synthesize",
]
