"""The compile half of the verification flow: RTL sources → reusable model.

The expensive step of every check is the RTL frontend — preprocess, parse,
elaborate, lower to an AIG (:func:`repro.rtl.synth.synthesize`).  The old
``FormalEngine`` hid that cost inside its ``system_factory``, re-running the
frontend for *every* fresh system a check needed; with per-property tasks
that would mean recompiling the DUT N times for N properties.

This module splits compilation out:

* :class:`CompiledDesign` is the result of compiling one design × variant —
  an immutable base :class:`~repro.formal.transition.TransitionSystem` plus
  its property inventory, keyed by a content hash of everything that
  determined it.  ``compiled.system()`` hands each check an independent
  clone (O(gates) dict copies, no frontend), so it *is* the
  ``system_factory`` the engine wants.
* :class:`CompileCache` memoizes compiles by content key.  The module-level
  :data:`COMPILE_CACHE` (used via :func:`compile_design`) is what makes
  "exactly one compile per design × variant" hold across a sharded
  property set: the scheduler's parent process compiles once while
  expanding tasks, and forked workers inherit the populated cache.
"""

from __future__ import annotations

import hashlib
import json
import time
from collections import OrderedDict
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..formal.transition import TransitionSystem
from ..rtl.synth import synthesize

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..formal.engine import EngineConfig, FormalEngine

__all__ = ["CompiledDesign", "CompileCache", "COMPILE_CACHE",
           "compile_design", "design_key", "hash_chunks",
           "config_fingerprint"]


def config_fingerprint(config) -> str:
    """Canonical content fingerprint of an :class:`EngineConfig`.

    The ONE serialization used wherever a config keys a cache — the
    campaign artifact cache, the shard-plan cache and the per-design
    engine LRU.  Divergent serializations would fingerprint the same
    config differently per key space, which is exactly the class of silent
    staleness bug content addressing is meant to rule out.
    """
    return json.dumps(asdict(config), sort_keys=True, default=list)


def hash_chunks(pairs) -> str:
    """SHA-256 over length-framed ``(tag, text)`` pairs.

    The one implementation of the content-key framing shared by every key
    space (compile cache, campaign artifact cache, property-task chunks):
    ``tag:len(data):data`` per pair, so ``("s", "ab"), ("s", "c")`` and
    ``("s", "abc")`` hash differently.  The framing is
    compatibility-sensitive — changing it invalidates all caches at once.
    """
    hasher = hashlib.sha256()
    for tag, text in pairs:
        data = text.encode()
        hasher.update(f"{tag}:{len(data)}:".encode())
        hasher.update(data)
    return hasher.hexdigest()


def design_key(sources: Sequence[str], top: str,
               defines: Sequence[str] = ()) -> str:
    """Content hash of everything that determines a compile's output."""
    return hash_chunks(
        [("top", top)]
        + [("define", define) for define in defines]
        + [("source", source) for source in sources])


@dataclass
class CompiledDesign:
    """One design × variant, compiled once and checkable many times.

    ``base`` is never handed out directly: checks mutate their system
    (L2S monitors, k-liveness counters), so :meth:`system` clones it per
    call.  ``key`` is the :func:`design_key` content hash; ``inventory``
    lists every checkable property as ``(name, kind)`` in the canonical
    check order (asserts, covers, liveness — declaration order within
    each), which is the order aggregated reports reconstruct.
    """

    top: str
    key: str
    base: TransitionSystem
    sources: Tuple[str, ...]
    defines: Tuple[str, ...] = ()
    compile_time_s: float = 0.0
    clones: int = 0

    def system(self) -> TransitionSystem:
        """A fresh, independent system instance (the engine factory)."""
        self.clones += 1
        return self.base.clone()

    def engine_for(self, config: "EngineConfig") -> "FormalEngine":
        """A persistent :class:`~repro.formal.engine.FormalEngine`.

        The same compiled design checked repeatedly (per-property tasks of
        one group, warm ``run_fv`` calls, interactive sessions) reuses one
        engine per (design, engine-config): the batched engine keeps its
        sweep unroller and L2S compilation warm between
        ``check_properties`` calls, so the N-th check of a design pays
        zero re-encoding.  Backed by the module-level
        :data:`_WARM_ENGINES` LRU — bounded globally, not per design, so
        a process that walks many designs (a sweep loop, a notebook)
        holds a handful of warm engines total, and an engine whose solver
        arenas outgrew the size cap is retired rather than reused (arenas
        only grow; dead learned/guard slots are not compacted).
        """
        from dataclasses import replace

        from ..formal.engine import FormalEngine

        cache_key = (self.key, config_fingerprint(config))
        engine = _WARM_ENGINES.get(cache_key)
        if engine is not None:
            if engine.warm_ints() <= _MAX_WARM_INTS:
                _WARM_ENGINES.move_to_end(cache_key)
                return engine
            del _WARM_ENGINES[cache_key]  # oversized: rebuild fresh
        # The engine gets its own config copy: the cache entry is keyed by
        # the config's *current* content, and a caller mutating the object
        # afterwards must not retroactively change what the cached engine
        # checks with.
        engine = FormalEngine(self.system, replace(config))
        _WARM_ENGINES[cache_key] = engine
        while len(_WARM_ENGINES) > _MAX_WARM_ENGINES:
            _WARM_ENGINES.popitem(last=False)
        return engine

    @property
    def inventory(self) -> List[Tuple[str, str]]:
        return ([(p.name, "assert") for p in self.base.asserts]
                + [(p.name, "cover") for p in self.base.covers]
                + [(p.name, "live") for p in self.base.liveness])

    def property_names(self) -> List[str]:
        return [name for name, _ in self.inventory]


class CompileCache:
    """Memoized compiles, keyed by content hash, with an LRU bound.

    ``compiles`` counts actual frontend runs, ``hits`` counts avoided ones —
    the counters the campaign acceptance test asserts on ("exactly one
    compile per design × variant").

    ``max_entries`` must comfortably exceed the number of distinct
    design × variant sources a single campaign shards: the one-compile
    guarantee relies on every parent-side compile still being resident
    when the workers fork, so an eviction between sharding and forking
    silently turns into per-worker recompiles (correct, but N× slower).
    The default covers the corpus (13 design × variants) with an order of
    magnitude to spare; compiled corpus designs are a few thousand AIG
    nodes each, so memory stays in the tens of MB.
    """

    def __init__(self, max_entries: int = 128) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, CompiledDesign]" = OrderedDict()
        self.compiles = 0
        self.hits = 0

    def get_or_compile(self, sources: Sequence[str], top: str,
                       defines: Sequence[str] = ()) -> CompiledDesign:
        key = design_key(sources, top, defines)
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return cached
        begin = time.perf_counter()
        merged = "\n".join(sources)
        base = synthesize(merged, top, defines=tuple(defines))
        compiled = CompiledDesign(
            top=top, key=key, base=base, sources=tuple(sources),
            defines=tuple(defines),
            compile_time_s=time.perf_counter() - begin)
        self.compiles += 1
        self._entries[key] = compiled
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return compiled

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> Dict[str, int]:
        return {"compiles": self.compiles, "hits": self.hits,
                "entries": len(self._entries)}


#: The process-wide cache.  Workers forked from a parent that already
#: compiled a design inherit these entries and never recompile it.
COMPILE_CACHE = CompileCache()

#: Warm engines across ALL compiled designs, keyed by
#: (design key, config fingerprint) — see CompiledDesign.engine_for.
_WARM_ENGINES: "OrderedDict[Tuple[str, str], FormalEngine]" = OrderedDict()
#: Total warm engines held per process.
_MAX_WARM_ENGINES = 4
#: Retire a warm engine once its solver arenas exceed this many list
#: slots.  A CPython slot of distinct (mostly non-cached) ints costs
#: ~36 bytes, so the worst-case retained set is roughly
#: _MAX_WARM_ENGINES x _MAX_WARM_INTS x 36B ~ 280 MB — size this down if
#: running under a tight campaign ``memory_limit_mb``.  (Campaign workers
#: fork per task and exit, so they never accumulate warm engines.)
_MAX_WARM_INTS = 2_000_000


def compile_design(sources: Sequence[str], top: str,
                   defines: Sequence[str] = (),
                   cache: Optional[CompileCache] = None) -> CompiledDesign:
    """Compile (or fetch) a design through ``cache`` (default: global)."""
    return (cache or COMPILE_CACHE).get_or_compile(sources, top, defines)
