"""Property tasks: the atomic schedulable unit of the verification API.

The paper's usage model is per-property — AutoSVA emits many SVA properties
per module and the FV tool reports a verdict for each — so the schedulable
unit here is a :class:`PropertyTask`: design × variant × property-group ×
engine-config.  A task is fully self-contained and picklable (it carries
the merged source text, not open handles), so it can cross a process or
wire boundary; :func:`execute_task` is the worker-side entry point.

:func:`expand_tasks` turns one design into its task list, compiling the
design once (through the shared :data:`~repro.api.compile.COMPILE_CACHE`)
to enumerate the property inventory.  Workers forked afterwards inherit
that compile and only run the check step.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..formal.engine import CheckReport, EngineConfig, FormalEngine, \
    PropertyResult
from ..obs import METRICS, TRACER
from .compile import COMPILE_CACHE, CompiledDesign, compile_design

__all__ = ["PropertyTask", "TaskEvent", "build_tasks", "expand_tasks",
           "execute_task", "group_properties"]


@dataclass(frozen=True)
class PropertyTask:
    """One unit of verification work: check a property group of a design.

    ``design`` labels the design × variant this task belongs to (e.g.
    ``"A3.buggy"``); ``properties`` names the group this task checks — an
    empty tuple means *every* property (the whole-design degenerate case).
    ``sources`` is the complete merged RTL + testbench text, by value, so
    the task survives pickling to any worker.

    ``kinds`` / ``coi_sizes`` / ``order`` are optional per-property
    scheduling metadata, parallel to ``properties``: the property's kind
    (``assert``/``cover``/``live``), its cone-of-influence latch count,
    and its position in the design's canonical (inventory-order) check
    sequence.  The cost model prices tasks with the first two; report
    aggregation reassembles canonical property order from the third no
    matter how properties were grouped or work-stolen.  None of them
    affect verdicts, so they are deliberately absent from the cache key.
    """

    task_id: str
    design: str
    dut_module: str
    sources: Tuple[str, ...]
    engine_config: EngineConfig
    properties: Tuple[str, ...] = ()
    variant: str = "fixed"
    defines: Tuple[str, ...] = ()
    kinds: Tuple[str, ...] = ()
    coi_sizes: Tuple[int, ...] = ()
    order: Tuple[int, ...] = ()

    @property
    def job_id(self) -> str:
        """Scheduler-facing id (tasks schedule like campaign jobs)."""
        return self.task_id

    def cache_chunks(self) -> Iterator[Tuple[str, str]]:
        """(tag, text) pairs that determine this task's outcome, for
        content-addressed result caching."""
        yield "module", self.dut_module
        for define in self.defines:
            yield "define", define
        for source in self.sources:
            yield "source", source
        for name in self.properties:
            yield "property", name

    def split(self) -> Optional[Tuple["PropertyTask", "PropertyTask"]]:
        """Halve this task's property group (work stealing), or None.

        The halves keep the parent's relative property order and slice the
        scheduling metadata alongside, so merged reports and cost
        estimates stay exact.  Task ids extend the parent's
        (``.../p3`` → ``.../p3a`` + ``.../p3b``), keeping them unique.
        """
        from dataclasses import replace

        if len(self.properties) < 2:
            return None
        mid = (len(self.properties) + 1) // 2

        def part(suffix: str, lo: int, hi: int) -> "PropertyTask":
            return replace(
                self, task_id=f"{self.task_id}{suffix}",
                properties=self.properties[lo:hi],
                kinds=self.kinds[lo:hi], coi_sizes=self.coi_sizes[lo:hi],
                order=self.order[lo:hi])

        return part("a", 0, mid), part("b", mid, len(self.properties))


@dataclass
class TaskEvent:
    """One streamed event: a task finished, or pipeline progress.

    ``kind`` distinguishes the event classes the session streams:

    * ``"result"`` (default) — a task finished (ok, error or timeout);
    * ``"compile_started"`` / ``"compile_done"`` — the streaming frontend
      began / finished a design's FT generation + compile (``design``
      names it; ``wall_time_s`` on *done* is the frontend time);
    * ``"steal"`` — the scheduler re-split the task named by ``task_id``
      to feed idle workers (its verdicts arrive via the halves' result
      events);
    * ``"requeue"`` — a remote worker died with this task in flight; the
      task went back to the queue, excluded from the dead worker
      (``worker`` names it), and its verdicts will arrive from a
      surviving agent.

    ``worker`` on a result event is the ``host:pid`` that executed the
    task (forked child locally, remote agent on a TCP fabric) — timing/
    calibration consumers use it to filter samples per host.

    ``results`` carries the per-property verdicts as plain data
    (``name``/``kind``/``status``/``depth``), deliberately excluding wall
    times so events are deterministic across worker counts and cache
    replays.  ``compiled_in_worker`` is False when the worker served the
    check from an inherited (or warm) compile cache entry — the signal the
    one-compile-per-design guarantee is asserted on.  A cache replay sets
    ``from_cache`` and reports the original check's wall time in
    ``original_wall_time_s``.
    """

    task_id: str
    design: str
    variant: str
    status: str                       # "ok" | "error" | "timeout"
    results: List[Dict[str, object]] = field(default_factory=list)
    error: Optional[str] = None
    wall_time_s: float = 0.0
    from_cache: bool = False
    compiled_in_worker: bool = False
    engine_time_s: float = 0.0
    kind: str = "result"
    original_wall_time_s: Optional[float] = None
    worker: Optional[str] = None
    #: Seconds the worker spent inside SAT ``solve()`` for this task —
    #: the solver share of ``engine_time_s``.  Measurement-only, like the
    #: wall times: excluded from the verdict-equivalence contract.
    solve_time_s: float = 0.0
    #: Solver-counter deltas for this task (conflicts, decisions, ...).
    solver: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def is_result(self) -> bool:
        return self.kind == "result"


def group_properties(names: Sequence[str],
                     group_size: int = 1) -> List[Tuple[str, ...]]:
    """Chunk a property inventory into task-sized groups."""
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    names = list(names)
    return [tuple(names[i:i + group_size])
            for i in range(0, len(names), group_size)]


def build_tasks(label: str, dut_module: str, sources: Sequence[str],
                config: EngineConfig, groups: Sequence[Sequence[str]],
                variant: str = "fixed",
                defines: Sequence[str] = (),
                meta: Optional[Dict[str, Tuple[str, int, int]]] = None
                ) -> List[PropertyTask]:
    """The ONE constructor of a design's task list from its groups.

    Both :func:`expand_tasks` (fresh expansion) and the campaign's
    shard-plan cache restore go through here, so the task-id scheme and
    field wiring cannot drift between the two paths — drift would change
    cache keys and break warm-rerun replay silently.

    ``meta`` maps property name → ``(kind, coi_size, inventory_order)``
    and populates the scheduling metadata on each task; names missing
    from it get neutral metadata (kind ``assert``, COI 0, running order).
    """

    def metadata(group: Sequence[str]) -> Dict[str, tuple]:
        if meta is None:
            return {}
        picked = [meta.get(name, ("assert", 0, 0)) for name in group]
        return {
            "kinds": tuple(entry[0] for entry in picked),
            "coi_sizes": tuple(int(entry[1]) for entry in picked),
            "order": tuple(int(entry[2]) for entry in picked),
        }

    return [
        PropertyTask(task_id=f"{label}/p{index}", design=label,
                     dut_module=dut_module, sources=tuple(sources),
                     engine_config=config, properties=tuple(group),
                     variant=variant, defines=tuple(defines),
                     **metadata(group))
        for index, group in enumerate(groups)
    ]


def expand_tasks(sources: Sequence[str], dut_module: str,
                 config: Optional[EngineConfig] = None,
                 design: Optional[str] = None,
                 variant: str = "fixed",
                 group_size: int = 1,
                 defines: Sequence[str] = (),
                 properties: Optional[Sequence[str]] = None
                 ) -> List[PropertyTask]:
    """Unfold one design into per-property-group tasks.

    Compiles the design (once, through the shared cache) to enumerate its
    properties; ``properties`` restricts expansion to a named subset.
    """
    config = config or EngineConfig()
    compiled = compile_design(sources, dut_module, defines)
    inventory = compiled.inventory
    names = [name for name, _ in inventory]
    if properties is not None:
        wanted = set(properties)
        unknown = sorted(wanted - set(names))
        if unknown:
            raise KeyError(f"no property named {unknown[0]!r}")
        names = [n for n in names if n in wanted]
    # Kind + canonical order are free here; COI sizes are not (a closure
    # walk per property) — the sharding layer computes those when it
    # prices tasks for cost scheduling.
    meta = {name: (kind, 0, position)
            for position, (name, kind) in enumerate(inventory)}
    return build_tasks(design or dut_module, dut_module, sources, config,
                       group_properties(names, group_size),
                       variant=variant, defines=defines, meta=meta)


def result_payload(result: PropertyResult) -> Dict[str, object]:
    """The deterministic plain-data form of one property verdict."""
    return {"name": result.name, "kind": result.kind,
            "status": result.status, "depth": result.depth}


def execute_task(task: PropertyTask) -> Dict[str, object]:
    """Worker-side execution: compile (or hit the cache), check the group.

    Returns a plain JSON-able payload; exceptions propagate so the
    scheduler can convert them into per-task error results.
    """
    begin = time.perf_counter()
    with TRACER.span("task", cat="task",
                     args={"task_id": task.task_id,
                           "design": task.design,
                           "properties": len(task.properties)}):
        compiles_before = COMPILE_CACHE.compiles
        with TRACER.span("compile", cat="compile",
                         args={"design": task.design}):
            compiled = compile_design(task.sources, task.dut_module,
                                      task.defines)
        compiled_here = COMPILE_CACHE.compiles > compiles_before
        METRICS.counter("task.compiles" if compiled_here
                        else "task.compile_cache_hits").inc()
        # Persistent per-config engine: consecutive tasks of one design in
        # the same process (or repeated checks of one compiled design)
        # reuse the warm sweep unroller and proof contexts instead of
        # re-encoding.
        engine = compiled.engine_for(task.engine_config)
        names = list(task.properties) if task.properties else None
        with TRACER.span("check", cat="check",
                         args={"task_id": task.task_id}):
            report = engine.check_properties(names)
    METRICS.counter("task.executed").inc()
    return {
        "design": report.design,
        "task_id": task.task_id,
        "properties": [result_payload(r) for r in report.results],
        "compiled_in_worker": compiled_here,
        "engine_time_s": time.perf_counter() - begin,
        "solve_time_s": report.solve_time_s,
        "solver": report.solver,
    }
