"""Verification sessions: schedule property tasks, stream results.

A :class:`VerificationSession` is the new top of the verification API:

* it takes a list of :class:`~repro.api.task.PropertyTask` (from
  :func:`~repro.api.task.expand_tasks` or the campaign layer),
* pre-compiles each distinct design × variant **once** in the calling
  process (populating the shared compile cache, which forked workers
  inherit — this is what makes per-property sharding recompile-free),
* :meth:`run` streams :class:`~repro.api.task.TaskEvent` objects as tasks
  finish on the worker pool,
* and :meth:`reports` rebuilds per-design
  :class:`~repro.formal.engine.CheckReport` aggregates from the events, in
  canonical property order, identical in verdicts to a whole-design run.

Batch usage::

    tasks = expand_tasks([source], "tlb", EngineConfig(max_bound=8))
    session = VerificationSession(tasks, workers=4)
    for event in session.run():          # streams as verdicts land
        print(event.task_id, event.status)
    report = session.reports()["tlb"]    # the familiar CheckReport shape
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Sequence

from ..campaign.cache import ArtifactCache
from ..campaign.scheduler import iter_campaign
from ..formal.engine import CheckReport, PropertyResult
from .compile import compile_design
from .task import PropertyTask, TaskEvent, execute_task

__all__ = ["VerificationSession", "run_tasks", "aggregate_reports"]


def _event_from(task: PropertyTask, result) -> TaskEvent:
    payload = result.payload or {}
    return TaskEvent(
        task_id=task.task_id, design=task.design, variant=task.variant,
        status=result.status,
        results=list(payload.get("properties", [])),
        error=result.error, wall_time_s=result.wall_time_s,
        from_cache=result.from_cache,
        # A cache replay compiled nothing *this* run, whatever the stored
        # payload recorded about the run that produced it.
        compiled_in_worker=(not result.from_cache
                            and bool(payload.get("compiled_in_worker",
                                                 False))),
        engine_time_s=float(payload.get("engine_time_s", 0.0)))


def aggregate_reports(tasks: Sequence[PropertyTask],
                      events: Sequence[TaskEvent]
                      ) -> Dict[str, CheckReport]:
    """Rebuild per-design :class:`CheckReport` objects from task events.

    Only ``ok`` events contribute; failed tasks are the caller's to
    inspect (:attr:`VerificationSession.failures`).  Property order is the
    task-expansion order, which :func:`~repro.api.task.expand_tasks`
    guarantees is the canonical (whole-design) check order — so verdicts
    *and* ordering match a design-granularity run.
    """
    order = {task.task_id: index for index, task in enumerate(tasks)}
    by_design: Dict[str, List[TaskEvent]] = {}
    modules: Dict[str, str] = {}
    for task in tasks:
        by_design.setdefault(task.design, [])
        modules[task.design] = task.dut_module
    for event in events:
        if event.ok:
            by_design.setdefault(event.design, []).append(event)
    reports: Dict[str, CheckReport] = {}
    for design, design_events in by_design.items():
        design_events.sort(key=lambda e: order.get(e.task_id, len(order)))
        report = CheckReport(design=modules.get(design, design))
        for event in design_events:
            for item in event.results:
                report.results.append(PropertyResult(
                    name=item["name"], kind=item["kind"],
                    status=item["status"], depth=item.get("depth", 0)))
            report.total_time_s += event.engine_time_s
        reports[design] = report
    return reports


class VerificationSession:
    """One scheduled run over a set of property tasks."""

    def __init__(self, tasks: Sequence[PropertyTask],
                 workers: int = 1,
                 cache: Optional[ArtifactCache] = None,
                 timeout_s: Optional[float] = None,
                 memory_limit_mb: Optional[int] = None,
                 precompile: bool = True) -> None:
        self.tasks: List[PropertyTask] = list(tasks)
        self.workers = workers
        self.cache = cache
        self.timeout_s = timeout_s
        self.memory_limit_mb = memory_limit_mb
        self.precompile = precompile
        self.events: List[TaskEvent] = []
        self.wall_time_s = 0.0

    # -- execution ---------------------------------------------------------
    def _precompile(self) -> None:
        """Compile each distinct design once, parent-side.

        Forked workers inherit the populated global compile cache, so a
        design's N property tasks cost one frontend run total instead of N.
        """
        seen = set()
        for task in self.tasks:
            signature = (task.sources, task.dut_module, task.defines)
            if signature in seen:
                continue
            seen.add(signature)
            try:
                compile_design(task.sources, task.dut_module, task.defines)
            except Exception:
                # Failure isolation: the task's worker recompiles, fails
                # the same way, and reports a per-task error result.
                continue

    def run(self) -> Iterator[TaskEvent]:
        """Execute all tasks, yielding a :class:`TaskEvent` per completion.

        Events stream in completion order (cached tasks first).  The full
        event list is also collected on :attr:`events` for post-run
        aggregation.
        """
        self.events = []
        begin = time.monotonic()
        if self.precompile:
            self._precompile()
        try:
            for index, result in iter_campaign(
                    self.tasks, workers=self.workers, cache=self.cache,
                    timeout_s=self.timeout_s,
                    memory_limit_mb=self.memory_limit_mb,
                    runner=execute_task):
                event = _event_from(self.tasks[index], result)
                self.events.append(event)
                yield event
        finally:
            self.wall_time_s = time.monotonic() - begin

    def run_all(self) -> List[TaskEvent]:
        """Drain :meth:`run` and return the collected events."""
        for _ in self.run():
            pass
        return self.events

    # -- results -----------------------------------------------------------
    @property
    def failures(self) -> List[TaskEvent]:
        return [event for event in self.events if not event.ok]

    def reports(self) -> Dict[str, CheckReport]:
        """Aggregated per-design reports (design label → CheckReport)."""
        return aggregate_reports(self.tasks, self.events)


def run_tasks(tasks: Sequence[PropertyTask],
              workers: int = 1,
              cache: Optional[ArtifactCache] = None,
              timeout_s: Optional[float] = None,
              memory_limit_mb: Optional[int] = None
              ) -> Dict[str, CheckReport]:
    """Batch convenience: run tasks, raise on failures, return reports."""
    session = VerificationSession(tasks, workers=workers, cache=cache,
                                  timeout_s=timeout_s,
                                  memory_limit_mb=memory_limit_mb)
    session.run_all()
    if session.failures:
        first = session.failures[0]
        raise RuntimeError(
            f"{len(session.failures)} task(s) failed; first: "
            f"{first.task_id} [{first.status}] {first.error}")
    return session.reports()
