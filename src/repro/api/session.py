"""Verification sessions: schedule property tasks, stream results.

A :class:`VerificationSession` is the top of the verification API:

* it takes :class:`~repro.api.task.PropertyTask` units — a list (from
  :func:`~repro.api.task.expand_tasks`) or a *stream* (the campaign
  layer's sharding generator, which interleaves
  :class:`~repro.campaign.scheduler.SourceNotice` compile-progress
  markers between designs so frontend work overlaps checking),
* for list input it pre-compiles each distinct design × variant **once**
  in the calling process (populating the shared compile cache, which
  forked workers inherit — this is what makes per-property sharding
  recompile-free); streaming sources compile for themselves,
* :meth:`run` streams :class:`~repro.api.task.TaskEvent` objects as tasks
  finish on the worker pool — plus ``compile_started`` /
  ``compile_done`` / ``steal`` progress events when the source emits
  notices or work stealing re-splits a pending task,
* and :meth:`reports` rebuilds per-design
  :class:`~repro.formal.engine.CheckReport` aggregates from the events,
  in canonical property order, identical in verdicts to a whole-design
  run no matter how properties were grouped, scheduled or stolen.

Batch usage::

    tasks = expand_tasks([source], "tlb", EngineConfig(max_bound=8))
    session = VerificationSession(tasks, workers=4)
    for event in session.run():          # streams as verdicts land
        print(event.task_id, event.status)
    report = session.reports()["tlb"]    # the familiar CheckReport shape
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Sequence

from ..campaign.cache import ArtifactCache
from ..campaign.scheduler import Scheduler, SourceNotice
from ..formal.engine import CheckReport, PropertyResult
from .compile import compile_design
from .task import PropertyTask, TaskEvent, execute_task

__all__ = ["VerificationSession", "aggregate_reports", "event_from_result",
           "run_tasks"]


def event_from_result(task: PropertyTask, result) -> TaskEvent:
    """Build the public :class:`TaskEvent` for a finished task.

    The one place a scheduler ``JobResult`` becomes the event shape every
    streaming consumer sees — the session below and the campaign service
    broker, which drives the scheduler itself but must emit events
    indistinguishable from a one-shot session's.
    """
    payload = result.payload or {}
    return TaskEvent(
        task_id=task.task_id, design=task.design, variant=task.variant,
        status=result.status,
        results=list(payload.get("properties", [])),
        error=result.error, wall_time_s=result.wall_time_s,
        from_cache=result.from_cache,
        original_wall_time_s=result.original_wall_time_s,
        worker=result.worker,
        # A cache replay compiled nothing *this* run, whatever the stored
        # payload recorded about the run that produced it.
        compiled_in_worker=(not result.from_cache
                            and bool(payload.get("compiled_in_worker",
                                                 False))),
        engine_time_s=float(payload.get("engine_time_s", 0.0)),
        solve_time_s=float(payload.get("solve_time_s", 0.0)),
        solver=dict(payload.get("solver") or {}))


#: Backwards-compatible private alias (pre-service name).
_event_from = event_from_result


def _combine_payloads(task: PropertyTask, first: Dict, second: Dict
                      ) -> Dict[str, object]:
    """Reassemble a split task's payload from its halves (in order).

    The scheduler caches this under the *parent's* key after a steal, so
    warm reruns replay the original grouping untouched.
    """
    solver: Dict[str, float] = {}
    for half in (first, second):
        for key, value in (half.get("solver") or {}).items():
            solver[key] = solver.get(key, 0) + value
    return {
        "design": first.get("design") or second.get("design"),
        "task_id": task.task_id,
        "properties": (list(first.get("properties", []))
                       + list(second.get("properties", []))),
        "compiled_in_worker": (bool(first.get("compiled_in_worker", False))
                               or bool(second.get("compiled_in_worker",
                                                  False))),
        "engine_time_s": (float(first.get("engine_time_s", 0.0))
                          + float(second.get("engine_time_s", 0.0))),
        "solve_time_s": (float(first.get("solve_time_s", 0.0))
                         + float(second.get("solve_time_s", 0.0))),
        "solver": solver,
    }


def aggregate_reports(tasks: Sequence[PropertyTask],
                      events: Sequence[TaskEvent]
                      ) -> Dict[str, CheckReport]:
    """Rebuild per-design :class:`CheckReport` objects from task events.

    Only ``ok`` *result* events contribute (compile/steal progress events
    are skipped); failed tasks are the caller's to inspect
    (:attr:`VerificationSession.failures`).  Property order in each report
    is the design's **canonical inventory order**, reassembled from the
    per-property ``order`` metadata the tasks carry — so verdicts *and*
    ordering match a whole-design run regardless of how properties were
    grouped (cost bins, inventory chunks) or re-split by work stealing.
    Tasks without order metadata fall back to task-expansion order, which
    for inventory-chunked groups is the same thing.
    """
    tasks = list(tasks)
    task_order = {task.task_id: index for index, task in enumerate(tasks)}
    name_order: Dict[tuple, int] = {}
    for task in tasks:
        if task.order and len(task.order) == len(task.properties):
            for name, position in zip(task.properties, task.order):
                name_order[(task.design, name)] = position
    by_design: Dict[str, List[TaskEvent]] = {}
    modules: Dict[str, str] = {}
    for task in tasks:
        by_design.setdefault(task.design, [])
        modules[task.design] = task.dut_module
    for event in events:
        if event.is_result and event.ok:
            by_design.setdefault(event.design, []).append(event)
    reports: Dict[str, CheckReport] = {}
    for design, design_events in by_design.items():
        design_events.sort(
            key=lambda e: task_order.get(e.task_id, len(task_order)))
        report = CheckReport(design=modules.get(design, design))
        items: List[tuple] = []
        fallback = 0
        for event in design_events:
            for item in event.results:
                position = name_order.get((design, item["name"]))
                sort_key = (0, position) if position is not None \
                    else (1, fallback)
                items.append((sort_key, item))
                fallback += 1
            report.total_time_s += event.engine_time_s
            report.solve_time_s += event.solve_time_s
            for name, value in event.solver.items():
                report.solver[name] = report.solver.get(name, 0) + value
        items.sort(key=lambda pair: pair[0])
        for _, item in items:
            report.results.append(PropertyResult(
                name=item["name"], kind=item["kind"],
                status=item["status"], depth=item.get("depth", 0)))
        reports[design] = report
    return reports


class VerificationSession:
    """One scheduled run over a set (or stream) of property tasks.

    ``tasks`` may be a list/tuple (the classic shape) or any iterable —
    e.g. the campaign sharding generator, whose per-design frontend work
    then overlaps the checking of already-issued tasks.  With
    ``steal=True`` the scheduler re-splits pending property groups when
    workers would otherwise idle at the tail (``cost_model`` ranks which
    group to split first); verdicts are unaffected.

    ``transport`` selects the execution backend: None (the default)
    forks ``workers`` local processes; a
    :class:`~repro.dist.coordinator.TcpTransport` dispatches the same
    tasks to remote worker agents — verdicts are identical either way,
    and the per-task events then carry the executing ``worker`` id.
    With a remote transport ``precompile`` is forced off: the compile
    cache that matters lives in each worker agent, which compiles every
    design on first sight.
    """

    def __init__(self, tasks,
                 workers: int = 1,
                 cache: Optional[ArtifactCache] = None,
                 timeout_s: Optional[float] = None,
                 memory_limit_mb: Optional[int] = None,
                 precompile: bool = True,
                 steal: bool = False,
                 cost_model=None,
                 transport=None,
                 retry=None) -> None:
        self._source = tasks
        self._static = isinstance(tasks, (list, tuple))
        #: Every task that produced (or will produce) a result event.  For
        #: streaming sources this fills in as the run progresses.
        self.tasks: List[PropertyTask] = list(tasks) if self._static else []
        self.workers = workers
        self.cache = cache
        self.timeout_s = timeout_s
        self.memory_limit_mb = memory_limit_mb
        self.transport = transport
        # Parent-side precompiles only reach workers that fork from this
        # process; on a remote transport the agents compile for
        # themselves.  Unknown transports are assumed remote (a wasted
        # local compile costs more than a worker-side cache hit saves).
        self.precompile = precompile and \
            not getattr(transport, "remote", transport is not None)
        self.steal = steal
        self.cost_model = cost_model
        #: Optional :class:`~repro.campaign.scheduler.RetryPolicy` —
        #: transient worker deaths re-run bounded times before the error
        #: verdict surfaces.
        self.retry = retry
        self.events: List[TaskEvent] = []
        self.steal_counts: Dict[str, int] = {}
        self.requeue_counts: Dict[str, int] = {}
        self.wall_time_s = 0.0

    # -- execution ---------------------------------------------------------
    def _precompile(self) -> None:
        """Compile each distinct design once, parent-side.

        Forked workers inherit the populated global compile cache, so a
        design's N property tasks cost one frontend run total instead of N.
        (List input only — a streaming source compiles as it expands.)
        """
        seen = set()
        for task in self.tasks:
            signature = (task.sources, task.dut_module, task.defines)
            if signature in seen:
                continue
            seen.add(signature)
            try:
                compile_design(task.sources, task.dut_module, task.defines)
            except Exception:
                # Failure isolation: the task's worker recompiles, fails
                # the same way, and reports a per-task error result.
                continue

    def _cost_of(self, task: PropertyTask) -> float:
        if self.cost_model is not None:
            return self.cost_model.task_cost(task)
        return float(len(task.properties))

    def run(self) -> Iterator[TaskEvent]:
        """Execute all tasks, yielding a :class:`TaskEvent` per completion.

        Result events stream in completion order (cached tasks as they
        are admitted); ``compile_*``/``steal`` progress events interleave
        where they happen.  The full event list is also collected on
        :attr:`events` for post-run aggregation.
        """
        self.events = []
        self.steal_counts = {}
        self.requeue_counts = {}
        begin = time.monotonic()
        if self.precompile and self._static:
            self._precompile()
        scheduler = Scheduler(
            self._source, workers=self.workers, cache=self.cache,
            timeout_s=self.timeout_s,
            memory_limit_mb=self.memory_limit_mb, runner=execute_task,
            split=(lambda task: task.split()) if self.steal else None,
            combine=_combine_payloads if self.steal else None,
            cost_of=self._cost_of,
            transport=self.transport,
            retry=self.retry)
        try:
            for item in scheduler.run():
                tag = item[0]
                if tag == "done":
                    _, _, task, result = item
                    if not self._static:
                        self.tasks.append(task)
                    event = _event_from(task, result)
                elif tag == "notice":
                    notice: SourceNotice = item[1]
                    event = TaskEvent(
                        task_id="", design=notice.design, variant="",
                        status="ok", kind=notice.kind,
                        wall_time_s=notice.wall_time_s,
                        from_cache=notice.from_cache)
                elif tag == "requeue":
                    _, task, worker_id = item
                    self.requeue_counts[task.task_id] = \
                        self.requeue_counts.get(task.task_id, 0) + 1
                    event = TaskEvent(
                        task_id=task.task_id, design=task.design,
                        variant=task.variant, status="ok", kind="requeue",
                        worker=worker_id)
                elif tag == "retry":
                    _, task, _attempt, failed = item
                    event = TaskEvent(
                        task_id=task.task_id, design=task.design,
                        variant=task.variant, status="ok", kind="retry",
                        error=failed.error)
                else:  # "steal"
                    _, parent, _halves = item
                    self.steal_counts[parent.design] = \
                        self.steal_counts.get(parent.design, 0) + 1
                    event = TaskEvent(
                        task_id=parent.task_id, design=parent.design,
                        variant=parent.variant, status="ok", kind="steal")
                self.events.append(event)
                yield event
        finally:
            self.wall_time_s = time.monotonic() - begin

    def run_all(self) -> List[TaskEvent]:
        """Drain :meth:`run` and return the collected events."""
        for _ in self.run():
            pass
        return self.events

    # -- results -----------------------------------------------------------
    @property
    def results(self) -> List[TaskEvent]:
        """The result events only (no compile/steal progress)."""
        return [event for event in self.events if event.is_result]

    @property
    def failures(self) -> List[TaskEvent]:
        return [event for event in self.events
                if event.is_result and not event.ok]

    def reports(self) -> Dict[str, CheckReport]:
        """Aggregated per-design reports (design label → CheckReport)."""
        return aggregate_reports(self.tasks, self.events)


def run_tasks(tasks: Sequence[PropertyTask],
              workers: int = 1,
              cache: Optional[ArtifactCache] = None,
              timeout_s: Optional[float] = None,
              memory_limit_mb: Optional[int] = None
              ) -> Dict[str, CheckReport]:
    """Batch convenience: run tasks, raise on failures, return reports."""
    session = VerificationSession(tasks, workers=workers, cache=cache,
                                  timeout_s=timeout_s,
                                  memory_limit_mb=memory_limit_mb)
    session.run_all()
    if session.failures:
        first = session.failures[0]
        raise RuntimeError(
            f"{len(session.failures)} task(s) failed; first: "
            f"{first.task_id} [{first.status}] {first.error}")
    return session.reports()
