"""``repro.api`` — the public verification API, per-property first.

The paper's usage model (conf_dac_Orenes-VeraMWM21) is per-property:
AutoSVA generates many SVA properties per module and the FV tool reports a
proof/CEX verdict for each one.  This layer makes that the API's atomic
unit instead of the whole design:

* :class:`~repro.api.task.PropertyTask` — design × variant ×
  property-group × engine-config, fully picklable, the schedulable unit;
* :func:`~repro.api.compile.compile_design` /
  :class:`~repro.api.compile.CompiledDesign` — the compile step, split out
  of the check step and memoized in :data:`~repro.api.compile.COMPILE_CACHE`
  so sharding a design's property set costs one frontend run, not N;
* :class:`~repro.api.session.VerificationSession` — schedules tasks on the
  campaign worker pool and **streams** :class:`~repro.api.task.TaskEvent`
  objects as verdicts land, with per-design
  :class:`~repro.formal.engine.CheckReport` aggregates rebuilt on demand;
* the engine registry (re-exported from :mod:`repro.formal.engines`) —
  ``EngineConfig.proof_engine`` / ``liveness_strategy`` name registered
  backends (``pdr``, ``kind``, ``bmc-only`` / ``l2s``, ``bounded``) and
  third-party engines plug in via :func:`register_engine`.

Quick start::

    from repro.api import EngineConfig, VerificationSession, expand_tasks

    tasks = expand_tasks([rtl_text, prop_sv, bind_sv], "tlb",
                         EngineConfig(max_bound=8), group_size=1)
    session = VerificationSession(tasks, workers=4)
    for event in session.run():
        print(f"{event.task_id}: {event.status}")
    report = session.reports()["tlb"]

Deprecation path
----------------

The pre-existing call shapes keep working as thin shims over this layer
and are the *compatibility* surface, not the primary one:

* ``repro.core.run_fv(ft, sources, config)`` — still returns a
  ``CheckReport`` (with traces); now compiles through the shared cache.
* ``repro.campaign.execute_job(job)`` — one whole-design task under the
  hood; ``expand_jobs`` + ``run_campaign`` are unchanged for
  design-granularity campaigns.
* ``FormalEngine(factory, config).check_all()`` — unchanged; new code
  should prefer ``check_properties`` on a ``CompiledDesign.system``
  factory.

New integrations should target ``repro.api``; the shims are kept for the
corpus scripts and will only grow, never change shape.
"""

from ..formal.engine import CheckReport, EngineConfig, PropertyResult
from ..formal.engines import (Engine, EngineVerdict, LivenessStrategy,
                              available_engines,
                              available_liveness_strategies, get_engine,
                              get_liveness_strategy, register_engine,
                              register_liveness_strategy)
from .compile import (COMPILE_CACHE, CompileCache, CompiledDesign,
                      compile_design, design_key)
from .session import (VerificationSession, aggregate_reports,
                      event_from_result, run_tasks)
from .task import (PropertyTask, TaskEvent, execute_task, expand_tasks,
                   group_properties)

__all__ = [
    "CheckReport", "EngineConfig", "PropertyResult",
    "Engine", "EngineVerdict", "LivenessStrategy",
    "available_engines", "available_liveness_strategies",
    "get_engine", "get_liveness_strategy",
    "register_engine", "register_liveness_strategy",
    "COMPILE_CACHE", "CompileCache", "CompiledDesign",
    "compile_design", "design_key",
    "VerificationSession", "aggregate_reports", "event_from_result",
    "run_tasks",
    "PropertyTask", "TaskEvent", "execute_task", "expand_tasks",
    "group_properties",
]
