# Developer entry points.  `make verify` is what CI runs.

PYTHON ?= python
export PYTHONPATH := $(CURDIR)/src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test corpus-check smoke-campaign smoke-property campaign \
	bench-campaign verify

test:
	$(PYTHON) -m pytest -x -q

corpus-check:
	$(PYTHON) -c "from repro.designs import validate; \
	validate(raise_on_issue=True); print('corpus healthy')"

smoke-campaign:
	$(PYTHON) -m repro.core.cli campaign --cases A1,A2 --workers 2 \
	--timeout 120

# Per-property granularity smoke: shard one ariane design's property set
# across 2 workers (exercises the repro.api task/session/compile-cache
# path on every push).
smoke-property:
	$(PYTHON) -m repro.core.cli campaign --cases A2 \
	--granularity property --workers 2 --timeout 120

campaign:
	$(PYTHON) -m repro.core.cli campaign --workers 4 \
	--cache-dir .repro-cache

bench-campaign:
	cd benchmarks && $(PYTHON) -m pytest -x -q bench_campaign.py -s

verify: test corpus-check smoke-campaign smoke-property
