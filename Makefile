# Developer entry points.  `make verify` is what CI runs.

PYTHON ?= python
export PYTHONPATH := $(CURDIR)/src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test corpus-check smoke-campaign smoke-property pipeline-smoke \
	dist-smoke obs-smoke service-smoke chaos-smoke campaign \
	bench-campaign bench-hotpath perf-smoke serve verify

test:
	$(PYTHON) -m pytest -x -q

corpus-check:
	$(PYTHON) -c "from repro.designs import validate; \
	validate(raise_on_issue=True); print('corpus healthy')"

smoke-campaign:
	$(PYTHON) -m repro.core.cli campaign --cases A1,A2 --workers 2 \
	--timeout 120

# Per-property granularity smoke: shard one ariane design's property set
# across 2 workers (exercises the repro.api task/session/compile-cache
# path on every push).
smoke-property:
	$(PYTHON) -m repro.core.cli campaign --cases A2 \
	--granularity property --workers 2 --timeout 120

# Streaming-pipeline equivalence gate: a 2-worker property campaign under
# --schedule cost (LPT groups + work stealing) must produce verdicts
# bit-identical to --schedule inventory.
pipeline-smoke:
	$(PYTHON) benchmarks/pipeline_smoke.py --workers 2

# Distributed-fabric equivalence gate: the corpus slice over loopback TCP
# with 2 worker agents must be verdict-identical to the local transport
# AND match the verdict digest recorded in benchmarks/BENCH_campaign.json.
dist-smoke:
	$(PYTHON) benchmarks/dist_smoke.py --workers 2

# Observability gate: a traced 2-design campaign must emit a valid
# Chrome trace + ExecutionRecord, and tracing must cost <= 5%.
obs-smoke:
	$(PYTHON) benchmarks/obs_smoke.py

# Campaign-service gate: 3 overlapping HTTP campaigns from 2 tenants on
# one shared 2-worker fleet must be verdict-identical (digests) to
# one-shot runs; an over-quota submission must be a structured 429 that
# consumes zero fabric slots; every ExecutionRecord must re-validate.
# Also the operator surface: /readyz flips unstarted->serving->drain,
# every mid-campaign /metrics scrape is validator-clean, autosva top
# renders, and 10 Hz scraping costs <=5% (+0.5s) on a warm round.
service-smoke:
	$(PYTHON) benchmarks/service_smoke.py --workers 2

# Crash-safety gate: kill -9 the server mid-journal-append, kill -9 a
# worker mid-task, and drop frames under --reconnect agents — every
# scenario must converge verdict-digest-identical to a fault-free
# baseline with zero tasks lost or double-reported (docs/chaos.md).
chaos-smoke:
	$(PYTHON) benchmarks/chaos_smoke.py

# The long-lived front door itself (docs/service.md).
serve:
	$(PYTHON) -m repro.core.cli serve --listen 127.0.0.1:8420 --workers 2

campaign:
	$(PYTHON) -m repro.core.cli campaign --workers 4 \
	--cache-dir .repro-cache

bench-campaign:
	cd benchmarks && $(PYTHON) -m pytest -x -q bench_campaign.py -s

# Corpus-wide legacy-vs-batched A/B of the model-checking hot path.
bench-hotpath:
	$(PYTHON) benchmarks/bench_formal_hotpath.py --compare

# The CI perf gate: quick A/B + regression check vs BENCH_formal.json.
perf-smoke:
	$(PYTHON) benchmarks/bench_formal_hotpath.py --quick --check

verify: test corpus-check smoke-campaign smoke-property pipeline-smoke \
	dist-smoke obs-smoke service-smoke
